"""Checkpoint/resume tests: a killed run resumed from its last
checkpoint converges to the same final result as an uninterrupted one.

The DSL budget here (depth 4, nodes 7) is the smallest that keeps the
reno family's buckets un-exhausted after iteration 1, so the loop
genuinely runs two iterations and leaves a *mid-run* boundary to resume
from — the tiny budgets the rest of the suite uses collapse to a single
iteration and would only exercise the resume-from-finished path.
"""

from dataclasses import replace

import pytest

from repro.dsl import family, with_budget
from repro.errors import SynthesisError
from repro.runtime.sinks import CollectorSink
from repro.runtime.context import RunContext
from repro.synth.refinement import SynthesisConfig, synthesize

DSL = with_budget(family("reno"), max_depth=4, max_nodes=7)

CONFIG = SynthesisConfig(
    initial_samples=4,
    initial_keep=4,
    completion_cap=4,
    max_iterations=2,
    exhaustive_cap=30,
    series_budget=48,
    max_replay_rows=192,
)


@pytest.fixture(scope="module")
def segments(reno_segments):
    return reno_segments[:6]


@pytest.fixture(scope="module")
def full_run(segments, tmp_path_factory):
    """One uninterrupted checkpointed run, shared read-only."""
    path = str(tmp_path_factory.mktemp("ckpt") / "full.jsonl")
    config = replace(CONFIG, checkpoint_path=path)
    result = synthesize(segments, DSL, config)
    with open(path, encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    return result, lines


def _same_outcome(resumed, full):
    assert resumed.expression == full.expression
    assert resumed.distance == pytest.approx(full.distance)
    assert resumed.total_handlers_scored == full.total_handlers_scored
    assert [r.kept for r in resumed.iterations] == [
        r.kept for r in full.iterations
    ]
    assert [r.ranking for r in resumed.iterations] == [
        r.ranking for r in full.iterations
    ]


def test_full_run_checkpoints_every_iteration(full_run):
    result, lines = full_run
    assert len(result.iterations) == 2
    assert len(lines) == 2


def test_resume_from_mid_run_boundary_matches_full(full_run, segments, tmp_path):
    """Simulate a kill after iteration 1: keep only the first checkpoint
    line, resume, and demand the identical final result."""
    full, lines = full_run
    partial = tmp_path / "killed.jsonl"
    partial.write_text(lines[0] + "\n")
    collector = CollectorSink()
    with RunContext([collector]) as ctx:
        resumed = synthesize(
            segments,
            DSL,
            replace(CONFIG, resume_path=str(partial)),
            context=ctx,
        )
    _same_outcome(resumed, full)
    restored = collector.of_kind("run_resumed")
    assert [e.iterations_restored for e in restored] == [1]


def test_resume_from_finished_checkpoint_matches_full(
    full_run, segments, tmp_path
):
    """Resuming a run that already finished its loop skips straight to
    the exhaustive pass and still lands on the same result."""
    full, lines = full_run
    path = tmp_path / "finished.jsonl"
    path.write_text("\n".join(lines) + "\n")
    resumed = synthesize(
        segments, DSL, replace(CONFIG, resume_path=str(path))
    )
    _same_outcome(resumed, full)


def test_resume_continues_checkpoint_history(full_run, segments, tmp_path):
    """``--checkpoint X --resume X`` appends to one continuous history."""
    _, lines = full_run
    path = tmp_path / "continue.jsonl"
    path.write_text(lines[0] + "\n")
    synthesize(
        segments,
        DSL,
        replace(CONFIG, resume_path=str(path), checkpoint_path=str(path)),
    )
    with open(path, encoding="utf-8") as handle:
        assert len(handle.read().splitlines()) == 2


def test_resume_refuses_mismatched_config(full_run, segments, tmp_path):
    _, lines = full_run
    path = tmp_path / "mismatch.jsonl"
    path.write_text(lines[0] + "\n")
    with pytest.raises(SynthesisError, match="seed"):
        synthesize(
            segments, DSL, replace(CONFIG, resume_path=str(path), seed=99)
        )


def test_resume_refuses_mismatched_dsl(full_run, segments, tmp_path):
    _, lines = full_run
    path = tmp_path / "wrong-dsl.jsonl"
    path.write_text(lines[0] + "\n")
    with pytest.raises(SynthesisError, match="dsl"):
        synthesize(
            segments,
            with_budget(family("vegas"), max_depth=4, max_nodes=7),
            replace(CONFIG, resume_path=str(path)),
        )


def test_resume_refuses_missing_checkpoint(segments, tmp_path):
    with pytest.raises(SynthesisError, match="no usable checkpoint"):
        synthesize(
            segments,
            DSL,
            replace(CONFIG, resume_path=str(tmp_path / "absent.jsonl")),
        )


def test_resume_can_change_worker_count(full_run, segments, tmp_path):
    """Execution knobs are not part of the fingerprint: a run
    checkpointed serially resumes under the pool (and vice versa)."""
    full, lines = full_run
    path = tmp_path / "reworked.jsonl"
    path.write_text(lines[0] + "\n")
    resumed = synthesize(
        segments, DSL, replace(CONFIG, resume_path=str(path), workers=2)
    )
    _same_outcome(resumed, full)
