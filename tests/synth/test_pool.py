"""BucketPool tests: shared-stream routing, pruning, step caps."""

from repro.dsl import RENO_DSL, ast, with_budget
from repro.synth.pool import BucketPool

SMALL = with_budget(RENO_DSL, max_depth=3, max_nodes=5)


def test_routing_matches_discriminator():
    pool = BucketPool(SMALL)
    pool.draw(4)
    for bucket in pool.live:
        for sketch in bucket.drawn:
            assert ast.operators_used(sketch.expr) == bucket.key


def test_draw_is_cumulative():
    pool = BucketPool(SMALL)
    pool.draw(2)
    snapshot = {
        bucket.key: list(bucket.drawn) for bucket in pool.live if bucket.drawn
    }
    pool.draw(5)
    for bucket in pool.live:
        if bucket.key in snapshot:
            assert bucket.drawn[: len(snapshot[bucket.key])] == snapshot[
                bucket.key
            ]


def test_no_duplicate_sketches_across_buckets():
    pool = BucketPool(SMALL)
    pool.draw(6)
    seen = set()
    for bucket in pool.live:
        for sketch in bucket.drawn:
            assert sketch.expr not in seen
            seen.add(sketch.expr)


def test_step_cap_bounds_work():
    pool = BucketPool(SMALL)
    pool.draw(10_000, max_steps=50)
    # The shared stream respects the cap; directed probes for buckets the
    # stream has not reached add a bounded amount on top.
    assert pool.generated < 50 + 4 * len(pool.buckets)
    assert not pool.exhausted


def test_exhaustion_marks_all_buckets():
    pool = BucketPool(SMALL)
    pool.draw(10**9, max_steps=10**9)
    assert pool.exhausted
    assert all(bucket.exhausted for bucket in pool.live)


def test_prune_drops_buckets_and_restricts_stream():
    pool = BucketPool(SMALL)
    pool.draw(3)
    keep = {frozenset({"+"}), frozenset({"+", "*"})}
    pool.prune(keep)
    assert set(pool.buckets) == keep
    before = pool.generated
    pool.draw(50)
    # Everything generated after the prune uses only the kept operators.
    for bucket in pool.live:
        for sketch in bucket.drawn:
            assert sketch.operators <= frozenset({"+", "*"})
    assert pool.generated >= before


def test_prune_does_not_redraw_seen_sketches():
    pool = BucketPool(SMALL)
    pool.draw(3)
    plus_bucket = pool.buckets[frozenset({"+"})]
    drawn_before = list(plus_bucket.drawn)
    pool.prune({frozenset({"+"})})
    pool.draw(len(drawn_before) + 5)
    exprs = [sketch.expr for sketch in plus_bucket.drawn]
    assert len(exprs) == len(set(exprs))
    assert exprs[: len(drawn_before)] == [s.expr for s in drawn_before]


def test_generated_counts_routed_and_discarded():
    pool = BucketPool(SMALL)
    pool.draw(2)
    routed = sum(len(bucket.drawn) for bucket in pool.live)
    assert pool.generated >= routed


def test_directed_probe_reaches_large_min_size_buckets():
    """A bucket whose smallest member exceeds the shared stream's early
    sizes must still receive samples (the Table 4 requirement)."""
    from repro.dsl import VEGAS_DSL

    dsl = with_budget(VEGAS_DSL, max_depth=5, max_nodes=10)
    pool = BucketPool(dsl)
    pool.draw(8)
    key = frozenset({"*", "+", "cmp", "cond"})
    bucket = pool.buckets[key]
    assert bucket.drawn, "directed probe must populate the bucket"
    for sketch in bucket.drawn:
        assert sketch.operators == key


def test_min_feasible_size_bounds():
    from repro.synth.enumerator import min_feasible_size

    assert min_feasible_size(frozenset()) == 1
    assert min_feasible_size(frozenset({"+"})) == 3
    assert min_feasible_size(frozenset({"cond", "cmp"})) == 6
    assert min_feasible_size(frozenset({"*", "+", "cmp", "cond"})) == 10
