"""Sketch-enumeration tests: constraints, determinism, bucket semantics."""

import itertools

import pytest

from repro.dsl import RENO_DSL, VEGAS_DSL, ast, is_simplifiable, with_budget
from repro.dsl.typecheck import infer_unit
from repro.errors import EnumerationError
from repro.synth.enumerator import count_sketches, enumerate_sketches
from repro.units import BYTES

SMALL_RENO = with_budget(RENO_DSL, max_depth=3, max_nodes=5)


@pytest.fixture(scope="module")
def small_sketches():
    return list(enumerate_sketches(SMALL_RENO))


def test_yields_in_increasing_size(small_sketches):
    sizes = [sketch.size for sketch in small_sketches]
    assert sizes == sorted(sizes)


def test_budgets_respected(small_sketches):
    assert all(sketch.size <= 5 for sketch in small_sketches)
    assert all(sketch.depth <= 3 for sketch in small_sketches)


def test_no_duplicates(small_sketches):
    exprs = [sketch.expr for sketch in small_sketches]
    assert len(exprs) == len(set(exprs))


def test_all_unit_correct(small_sketches):
    for sketch in small_sketches:
        unit = infer_unit(sketch.expr)
        assert unit is None or unit == BYTES, str(sketch)


def test_none_simplifiable(small_sketches):
    for sketch in small_sketches:
        assert not is_simplifiable(sketch.expr), str(sketch)


def test_reno_sketch_present(small_sketches):
    """The paper's Reno result, cwnd + c * reno_inc, must be reachable."""
    from repro.dsl.parser import parse

    target = ast.rename_holes(parse("cwnd + c0 * reno_inc"))
    assert any(sketch.expr == target for sketch in small_sketches)


def test_bare_cwnd_identity_excluded(small_sketches):
    assert all(sketch.expr != ast.Signal("cwnd") for sketch in small_sketches)


def test_cwnd_minus_positive_excluded(small_sketches):
    from repro.dsl.parser import parse

    banned = ast.rename_holes(parse("cwnd - reno_inc"))
    assert all(sketch.expr != banned for sketch in small_sketches)


def test_commutative_canonicalization(small_sketches):
    """Only one operand order of a commutative pair is enumerated."""
    seen = set()
    for sketch in small_sketches:
        expr = sketch.expr
        if isinstance(expr, ast.BinOp) and expr.op in ("+", "*"):
            key = (expr.op, frozenset({repr(expr.left), repr(expr.right)}))
            assert key not in seen
            seen.add(key)


def test_deterministic_order():
    first = [str(s) for s in itertools.islice(enumerate_sketches(SMALL_RENO), 50)]
    second = [str(s) for s in itertools.islice(enumerate_sketches(SMALL_RENO), 50)]
    assert first == second


def test_exact_ops_bucket_disjointness():
    keys = [frozenset(), frozenset({"+"}), frozenset({"+", "*"})]
    buckets = {
        key: {
            sketch.expr
            for sketch in enumerate_sketches(
                SMALL_RENO, allowed_ops=key, exact_ops=True
            )
        }
        for key in keys
    }
    assert buckets[frozenset()] & buckets[frozenset({"+"})] == set()
    assert buckets[frozenset({"+"})] & buckets[frozenset({"+", "*"})] == set()
    for key, sketches in buckets.items():
        for expr in sketches:
            assert ast.operators_used(expr) == key


def test_allowed_ops_must_be_in_dsl():
    with pytest.raises(EnumerationError):
        list(enumerate_sketches(RENO_DSL, allowed_ops=frozenset({"cube"})))


def test_count_matches_enumeration(small_sketches):
    assert count_sketches(SMALL_RENO) == len(small_sketches)


def test_count_cap():
    assert count_sketches(SMALL_RENO, cap=10) == 10


def test_cubic_dsl_allows_cube():
    from repro.dsl import CUBIC_DSL

    sketches = itertools.islice(
        enumerate_sketches(
            with_budget(CUBIC_DSL, max_depth=3, max_nodes=4),
            allowed_ops=frozenset({"cube", "+"}),
            exact_ops=True,
        ),
        200,
    )
    assert any("cube" in str(sketch) for sketch in sketches)


def test_strict_units_prune_vs_disabled():
    from dataclasses import replace

    strict = with_budget(VEGAS_DSL, max_depth=2, max_nodes=3)
    loose = replace(strict, strict_units=False, name="loose")
    assert count_sketches(loose) > count_sketches(strict)


def test_leaf_pool_contents():
    from repro.synth.enumerator import leaf_pool
    from repro.units import BYTES

    leaves = leaf_pool(SMALL_RENO)
    names = {getattr(expr, "name", None) for expr, _ in leaves}
    assert {"cwnd", "mss", "acked_bytes", "time_since_loss", "reno_inc"} <= names
    holes = [expr for expr, _ in leaves if isinstance(expr, ast.Const)]
    assert len(holes) == 1 and holes[0].is_hole
    units = dict((getattr(e, "name", "hole"), u) for e, u in leaves)
    assert units["cwnd"] == BYTES
    assert units["hole"] is None


def test_every_enumerated_sketch_within_dsl_vocabulary(small_sketches):
    allowed_signals = set(SMALL_RENO.signals)
    allowed_macros = set(SMALL_RENO.macros)
    for sketch in small_sketches:
        assert ast.signals_used(sketch.expr) <= allowed_signals
        assert ast.macros_used(sketch.expr) <= allowed_macros


def test_depth_budget_independent_of_node_budget():
    from repro.dsl import RENO_DSL

    deep_narrow = count_sketches(RENO_DSL, max_nodes=5, max_depth=2)
    deep_wide = count_sketches(RENO_DSL, max_nodes=5, max_depth=4)
    assert deep_narrow < deep_wide
