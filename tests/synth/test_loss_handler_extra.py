"""Additional loss-handler extension tests: sample extraction details."""

import pytest

from repro.cca import make_cca
from repro.dsl import RENO_DSL, with_budget
from repro.netsim import Environment, simulate
from repro.synth.loss_handler import (
    LossSample,
    extract_loss_samples,
    synthesize_loss_handler,
)

DSL = with_budget(RENO_DSL, max_depth=2, max_nodes=3)


def test_samples_deduplicate_consecutive_episodes(env_matrix):
    """Back-to-back identical reactions collapse to one sample (a
    periodic sawtooth may legitimately repeat the same levels later)."""
    trace = simulate(make_cca("reno"), env_matrix[1], duration=20.0)
    samples = extract_loss_samples(trace)
    assert samples
    for left, right in zip(samples, samples[1:]):
        same = (
            abs(left.cwnd_before - right.cwnd_before) < 1.0
            and abs(left.cwnd_after - right.cwnd_after) < 1.0
        )
        assert not same


def test_sample_env_contains_dsl_signals(env_matrix):
    trace = simulate(make_cca("reno"), env_matrix[1], duration=20.0)
    samples = extract_loss_samples(trace)
    assert samples
    for signal in ("cwnd", "mss", "acked_bytes", "time_since_loss"):
        assert signal in samples[0].env


def test_loss_sample_is_frozen():
    sample = LossSample(env={"cwnd": 1.0}, cwnd_before=1.0, cwnd_after=0.5)
    with pytest.raises(AttributeError):
        sample.cwnd_before = 2.0


def test_keep_top_respected(env_matrix):
    traces = [
        simulate(make_cca("reno"), env, duration=15.0)
        for env in env_matrix[:2]
    ]
    result = synthesize_loss_handler(traces, DSL, keep_top=2)
    assert len(result.ranking) == 2


def test_vegas_low_loss_rejected(env_matrix):
    """Vegas rarely loses; a short trace should not yield enough loss
    samples, and the extension must say so instead of fitting noise."""
    from repro.errors import SynthesisError

    traces = [simulate(make_cca("vegas"), env_matrix[1], duration=10.0)]
    with pytest.raises(SynthesisError):
        synthesize_loss_handler(traces, DSL)
