"""Handler-replay tests (§3.1): statefulness and fidelity."""

import numpy as np
import pytest

from repro.dsl.parser import parse
from repro.synth.replay import CWND_CAP_FACTOR, replay_handler, replay_on_segment
from repro.trace.segmentation import segment_trace
from repro.trace.signals import extract_signals


@pytest.fixture(scope="module")
def table(reno_trace):
    return extract_signals(segment_trace(reno_trace)[1])


def test_output_length_matches(table):
    series = replay_handler(parse("cwnd + reno_inc"), table)
    assert len(series) == len(table)


def test_statefulness_compounds(table):
    """cwnd + mss grows linearly from the initial window — each step reads
    the candidate's own previous output, not the trace's."""
    series = replay_handler(parse("cwnd + mss"), table)
    start = table.observed_cwnd()[0]
    assert series[0] == pytest.approx(start + table.mss)
    diffs = np.diff(series)
    capped = series >= series.max()
    assert np.all(diffs[~capped[1:]] >= 0)


def test_constant_handler_is_flat(table):
    series = replay_handler(parse("2 * mss"), table)
    assert np.all(series == 2 * table.mss)


def test_floor_at_mss(table):
    series = replay_handler(parse("cwnd - cwnd + 1"), table)
    assert np.all(series >= table.mss)


def test_cap_at_multiple_of_observed(table):
    series = replay_handler(parse("cwnd * 8"), table)
    cap = CWND_CAP_FACTOR * table.observed_cwnd().max()
    assert series.max() <= cap


def test_initial_cwnd_override(table):
    default = replay_handler(parse("cwnd + mss"), table)
    overridden = replay_handler(
        parse("cwnd + mss"), table, initial_cwnd=50_000.0
    )
    assert overridden[0] == pytest.approx(50_000.0 + table.mss)
    assert overridden[0] != default[0]


def test_unknown_signal_saturates_not_raises(table):
    # 'inflight' is present; 'wmax' is present; an out-of-table signal
    # would only arise from a foreign DSL — replay must not crash.
    series = replay_handler(parse("cwnd + ewma_rtt * ack_rate * 0.001"), table)
    assert np.all(np.isfinite(series))


def test_reno_handler_tracks_reno_trace(table):
    """The paper's Reno handler replayed on a Reno segment should stay
    close to the observed window; a wildly different handler should not."""
    from repro.distance import dtw_distance

    observed = table.observed_cwnd() / table.mss
    good = replay_handler(parse("cwnd + 0.7 * reno_inc"), table) / table.mss
    bad = replay_handler(parse("2 * mss"), table) / table.mss
    assert dtw_distance(good, observed) < dtw_distance(bad, observed)


def test_replay_on_segment_wrapper(reno_trace):
    segment = segment_trace(reno_trace)[1]
    synthesized, observed = replay_on_segment(
        parse("cwnd + reno_inc"), segment
    )
    assert len(synthesized) == len(observed)


def test_empty_table_returns_empty():
    from repro.trace.signals import SignalTable

    empty = SignalTable(
        mss=1500.0, columns={"time": np.empty(0), "cwnd": np.empty(0)}
    )
    assert len(replay_handler(parse("cwnd"), empty)) == 0


# A NaN window passes both clamp comparisons (every comparison with NaN
# is false), so without an explicit isfinite check it would feed itself
# back as the next step's cwnd and reach the distance metric.  The DSL's
# own operators clamp, but a compiled fn is arbitrary code.


def _nan_compiled(signals):
    from repro.dsl.compiled import CompiledHandler

    return CompiledHandler(
        signals=signals,
        fn=lambda *values: float("nan"),
        source="def _handler(*values): return float('nan')\n",
    )


def test_nan_window_pinned_to_cap(table):
    series = replay_handler(
        parse("cwnd"), table, compiled=_nan_compiled(("cwnd",))
    )
    cap = CWND_CAP_FACTOR * table.observed_cwnd().max()
    assert np.all(np.isfinite(series))
    assert np.all(series == cap)


def test_nan_constant_handler_pinned_to_cap(table):
    series = replay_handler(parse("1"), table, compiled=_nan_compiled(()))
    cap = CWND_CAP_FACTOR * table.observed_cwnd().max()
    assert np.all(np.isfinite(series))
    assert np.all(series == cap)


def test_inf_window_pinned_to_cap(table):
    from repro.dsl.compiled import CompiledHandler

    compiled = CompiledHandler(
        signals=("cwnd",),
        fn=lambda cwnd: float("inf"),
        source="def _handler(cwnd): return float('inf')\n",
    )
    series = replay_handler(parse("cwnd"), table, compiled=compiled)
    cap = CWND_CAP_FACTOR * table.observed_cwnd().max()
    assert np.all(series == cap)
