"""Runtime-substrate acceptance tests for the refinement loop.

These pin the contract the `repro.runtime` refactor makes: parallel and
serial runs agree bit-for-bit, the score cache changes runtime but never
results, one process pool serves a whole run, the event stream covers
every iteration, and the time budget is enforced *inside* scoring waves.
"""

import pytest

from repro.dsl import RENO_DSL, with_budget
from repro.runtime import CollectorSink, RunContext
from repro.synth.refinement import SynthesisConfig, synthesize

TINY = with_budget(RENO_DSL, max_depth=3, max_nodes=4)

FAST = SynthesisConfig(
    initial_samples=6,
    initial_keep=3,
    completion_cap=8,
    max_iterations=2,
    exhaustive_cap=120,
)


def _essentials(result):
    """Everything about a SynthesisResult except wall-clock time."""
    return (
        result.best.handler,
        result.best.distance,
        result.dsl_name,
        tuple(result.iterations),
        result.initial_bucket_count,
        result.total_handlers_scored,
        result.total_sketches_drawn,
    )


def _config(**overrides) -> SynthesisConfig:
    from dataclasses import replace

    return replace(FAST, **overrides)


def test_workers_two_matches_workers_one(reno_segments):
    serial = synthesize(reno_segments[:6], TINY, _config(workers=1))
    parallel = synthesize(reno_segments[:6], TINY, _config(workers=2))
    assert _essentials(serial) == _essentials(parallel)


def test_cache_disabled_matches_cache_enabled(reno_segments):
    cached = synthesize(
        reno_segments[:6], TINY, _config(cache_scores=True)
    )
    uncached = synthesize(
        reno_segments[:6], TINY, _config(cache_scores=False)
    )
    assert _essentials(cached) == _essentials(uncached)


def test_refinement_schedule_produces_cache_hits(reno_segments):
    """Iteration 2 re-scores iteration-1 sketches on an overlapping
    working set; with only 3 segments the sets must overlap, so the
    cache hit counter is provably nonzero.  (TINY's 42-sketch space is
    exhausted in one draw, which ends the loop after iteration 1, so
    this test needs a DSL deep enough to survive into iteration 2.)"""
    deeper = with_budget(RENO_DSL, max_depth=4, max_nodes=7)
    collector = CollectorSink()
    result = synthesize(
        reno_segments[:3],
        deeper,
        _config(
            initial_samples=4,
            initial_keep=2,
            completion_cap=4,
            max_iterations=2,
            exhaustive_cap=40,
            initial_segments=2,
        ),
        context=RunContext([collector]),
    )
    assert len(result.iterations) >= 2
    stats = collector.last_of_kind("cache_stats")
    assert stats is not None
    assert stats.hits > 0
    assert 0.0 < stats.hit_rate < 1.0


def test_event_stream_covers_every_iteration(reno_segments):
    collector = CollectorSink()
    result = synthesize(
        reno_segments[:6], TINY, FAST, context=RunContext([collector])
    )
    kinds = [event.kind for event in collector]
    assert kinds[0] == "run_started"
    assert kinds[-1] == "run_finished"
    iterations = collector.of_kind("iteration_finished")
    assert len(iterations) == len(result.iterations)
    for record, event in zip(result.iterations, iterations):
        assert event.index == record.index
        assert event.samples_per_bucket == record.samples_per_bucket
        assert event.segment_count == record.segment_count
        assert event.bucket_count == record.bucket_count
    # Every iteration also drew sketches and scored buckets.
    assert len(collector.of_kind("sketches_drawn")) >= len(result.iterations)
    assert collector.of_kind("bucket_scored")
    finished = collector.last_of_kind("run_finished")
    assert finished.best_distance == result.best.distance
    assert "refinement" in finished.phase_seconds


def test_parallel_run_spawns_at_most_one_pool(reno_segments):
    collector = CollectorSink()
    result = synthesize(
        reno_segments[:6],
        TINY,
        _config(workers=2),
        context=RunContext([collector]),
    )
    assert result.best.distance < float("inf")
    spawns = collector.of_kind("pool_spawned")
    assert len(spawns) == 1
    # The working set changed between iterations, so the pool re-primed
    # segments rather than being rebuilt.
    assert len(collector.of_kind("segments_primed")) >= 1


def test_budget_enforced_inside_waves(reno_segments):
    """With an already-expired budget, every bucket scores exactly its
    guaranteed minimum of one sketch: the wave is cut short *inside*,
    not only between iterations."""
    collector = CollectorSink()
    result = synthesize(
        reno_segments[:4],
        TINY,
        _config(max_iterations=5, time_budget_seconds=0.0),
        context=RunContext([collector]),
    )
    assert len(result.iterations) == 1  # stopped right after iteration 1
    waves = collector.of_kind("bucket_scored")
    assert waves
    assert all(event.sketches == 1 for event in waves)
    budget = collector.of_kind("budget_exceeded")
    assert budget and budget[0].phase == "refinement"
    # Best-so-far still exists despite the truncated waves.
    assert result.best.distance < float("inf")


def test_null_context_keeps_phase_timers_private(reno_segments):
    # No context: silent, and nothing observable changes (covered by the
    # equivalence tests); passing a context must not alter the result.
    collector = CollectorSink()
    with_ctx = synthesize(
        reno_segments[:6], TINY, FAST, context=RunContext([collector])
    )
    without_ctx = synthesize(reno_segments[:6], TINY, FAST)
    assert _essentials(with_ctx) == _essentials(without_ctx)
