"""Sketch metadata tests."""

from repro.dsl import ast
from repro.dsl.parser import parse
from repro.synth.sketch import Sketch


def test_from_expr_metadata():
    sketch = Sketch.from_expr(parse("cwnd + c0 * reno_inc"))
    assert sketch.size == 5
    assert sketch.depth == 3
    assert sketch.hole_count == 1
    assert sketch.operators == frozenset({"+", "*"})


def test_holes_canonically_renumbered():
    sketch = Sketch.from_expr(parse("c9 * cwnd + c4"))
    ids = [hole.hole_id for hole in ast.holes(sketch.expr)]
    assert ids == [0, 1]


def test_str_renders_expression():
    sketch = Sketch.from_expr(parse("cwnd + reno_inc"))
    assert str(sketch) == "cwnd + reno_inc"


def test_completion_count():
    sketch = Sketch.from_expr(parse("(c0 < c1) ? cwnd : mss"))
    assert sketch.completion_count(7) == 49


def test_equality_after_canonicalization():
    first = Sketch.from_expr(parse("c3 * cwnd"))
    second = Sketch.from_expr(parse("c8 * cwnd"))
    assert first == second
