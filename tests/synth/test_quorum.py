"""Quorum guard tests: exclusion with a provable working-set floor."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synth.scoring import (
    QuorumConfig,
    quorum_filter,
    segment_quality,
)
from repro.trace.model import AckRecord, Trace, TraceSegment


def _segment(quality=None, n=8):
    trace = Trace(
        cca_name="test",
        environment_label="lab",
        mss=1460,
        acks=[
            AckRecord(
                time=0.05 * i,
                ack_seq=1460 * (i + 1),
                acked_bytes=1460,
                rtt_sample=0.05,
                cwnd_bytes=14600.0,
                inflight_bytes=14600,
            )
            for i in range(n)
        ],
    )
    if quality is not None:
        trace.meta["quality"] = quality
    return TraceSegment(trace=trace, start=0, stop=n, preceding_loss_time=0.0)


def test_segment_quality_defaults_to_full():
    assert segment_quality(_segment()) == 1.0
    assert segment_quality(_segment(quality=0.6)) == 0.6


def test_segment_quality_survives_garbage_meta():
    segment = _segment()
    segment.trace.meta["quality"] = "not-a-number"
    assert segment_quality(segment) == 1.0


def test_config_validation():
    with pytest.raises(ValueError):
        QuorumConfig(min_segments=0)
    with pytest.raises(ValueError):
        QuorumConfig(quality_threshold=1.5)


def test_all_good_segments_kept_verbatim():
    segments = [_segment() for _ in range(5)]
    decision = quorum_filter(segments, QuorumConfig())
    assert list(decision.kept) == segments  # same objects, same order
    assert not decision.excluded
    assert not decision.degraded


def test_low_quality_segments_excluded():
    segments = [_segment(), _segment(quality=0.3), _segment()]
    decision = quorum_filter(segments, QuorumConfig(min_segments=2))
    assert len(decision.kept) == 2
    assert len(decision.excluded) == 1
    assert not decision.degraded
    # Kept segments preserve original order and identity.
    assert decision.kept == (segments[0], segments[2])


def test_backfill_best_first_when_below_quorum():
    segments = [
        _segment(quality=0.3),
        _segment(quality=0.7),
        _segment(quality=0.5),
        _segment(),
    ]
    decision = quorum_filter(
        segments, QuorumConfig(min_segments=3, quality_threshold=0.8)
    )
    assert len(decision.kept) == 3
    assert decision.degraded
    backfilled_qualities = sorted(
        segment_quality(s) for s in decision.backfilled
    )
    assert backfilled_qualities == [0.5, 0.7]  # best of the bad, not 0.3


def test_quorum_never_starves_with_all_bad_segments():
    segments = [_segment(quality=0.1) for _ in range(4)]
    decision = quorum_filter(segments, QuorumConfig(min_segments=2))
    assert len(decision.kept) == 2
    assert decision.degraded


def test_quorum_floor_caps_at_population():
    segments = [_segment(quality=0.1)]
    decision = quorum_filter(segments, QuorumConfig(min_segments=5))
    assert len(decision.kept) == 1  # min(min_segments, len(segments))


@given(
    qualities=st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=1,
        max_size=12,
    ),
    min_segments=st.integers(min_value=1, max_value=6),
    threshold=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
@settings(max_examples=200, deadline=None)
def test_quorum_floor_invariant(qualities, min_segments, threshold):
    """The guard provably never drops below min(quorum, population)."""
    segments = [_segment(quality=q) for q in qualities]
    config = QuorumConfig(
        min_segments=min_segments, quality_threshold=threshold
    )
    decision = quorum_filter(segments, config)
    assert len(decision.kept) >= min(min_segments, len(segments))
    # Partition: every segment is kept or excluded, never both/neither.
    assert len(decision.kept) + len(decision.excluded) == len(segments)
    assert set(map(id, decision.backfilled)) <= set(map(id, decision.kept))
    # Backfill only happens when the good population is short.
    good = sum(1 for q in qualities if q >= threshold)
    if good >= min_segments:
        assert not decision.backfilled
