"""Scorer tests: handler and sketch scoring semantics."""

import pytest

from repro.dsl.parser import parse
from repro.synth.scoring import ScoredHandler, Scorer
from repro.synth.sketch import Sketch


@pytest.fixture(scope="module")
def scorer():
    return Scorer(constant_pool=(0.5, 0.7, 1.0, 2.0), completion_cap=16)


@pytest.fixture(scope="module")
def working(reno_segments):
    return reno_segments[1:4]


def test_lower_is_better_on_matching_cca(scorer, working):
    reno = scorer.score_handler(parse("cwnd + 0.7 * reno_inc"), working)
    flat = scorer.score_handler(parse("2 * mss"), working)
    assert reno < flat


def test_score_is_mean_over_segments(scorer, working):
    handler = parse("cwnd + reno_inc")
    total = scorer.score_handler(handler, working)
    parts = sum(
        scorer.score_handler(handler, [segment]) for segment in working
    )
    assert total == pytest.approx(parts / len(working))


def test_score_deterministic(scorer, working):
    handler = parse("cwnd + 0.7 * reno_inc")
    assert scorer.score_handler(handler, working) == scorer.score_handler(
        handler, working
    )


def test_sketch_score_is_min_over_completions(scorer, working):
    sketch = Sketch.from_expr(parse("cwnd + c0 * reno_inc"))
    best = scorer.score_sketch(sketch, working)
    assert isinstance(best, ScoredHandler)
    # The chosen completion's own score equals the reported distance.
    assert scorer.score_handler(best.handler, working) == pytest.approx(
        best.distance
    )
    # And no pool completion beats it.
    for value in scorer.constant_pool:
        handler = parse(f"cwnd + {value} * reno_inc")
        assert scorer.score_handler(handler, working) >= best.distance - 1e-9


def test_scored_handler_ordering():
    a = ScoredHandler(parse("cwnd"), 1.0)
    b = ScoredHandler(parse("mss"), 2.0)
    assert a < b
    assert min(b, a) is a


def test_table_cache_reused(scorer, working):
    first = scorer.table_for(working[0])
    second = scorer.table_for(working[0])
    assert first is second


def test_metric_selection_changes_scores(working):
    dtw = Scorer(metric_name="dtw").score_handler(
        parse("cwnd + reno_inc"), working
    )
    euclid = Scorer(metric_name="euclidean").score_handler(
        parse("cwnd + reno_inc"), working
    )
    assert dtw != euclid


def test_coalescing_bounds_table_length(working):
    scorer = Scorer(max_replay_rows=64)
    table = scorer.table_for(working[0])
    assert len(table) <= 64


def test_table_cache_is_identity_safe(scorer, reno_trace):
    """A recycled id() must not alias a different segment's table.

    Create short-lived segments in a loop: CPython frequently reuses the
    freed object's address, which would poison an id()-keyed cache that
    does not hold and verify its keys.
    """
    from repro.trace.segmentation import segment_trace

    lengths = set()
    for _ in range(6):
        segment = segment_trace(reno_trace)[1]  # fresh object each time
        table = scorer.table_for(segment)
        assert len(table) == len(scorer.table_for(segment))
        lengths.add(len(table))
        del segment
    assert len(lengths) == 1  # always the same segment's table
