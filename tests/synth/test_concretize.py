"""Concretization tests (§4.2)."""

from repro.dsl import ast
from repro.dsl.parser import parse
from repro.synth.concretize import concretize_all, concretizations
from repro.synth.sketch import Sketch

POOL = (0.5, 1.0, 2.0)


def _sketch(text):
    return Sketch.from_expr(parse(text))


def test_no_holes_yields_self():
    sketch = _sketch("cwnd + reno_inc")
    handlers = concretize_all(sketch, POOL)
    assert handlers == [sketch.expr]


def test_single_hole_full_product():
    handlers = concretize_all(_sketch("cwnd + c0 * reno_inc"), POOL)
    assert len(handlers) == 3
    constants = {
        node.value
        for handler in handlers
        for node in ast.walk(handler)
        if isinstance(node, ast.Const)
    }
    assert constants == set(POOL)


def test_two_holes_cartesian():
    handlers = concretize_all(_sketch("c0 * cwnd + c1 * mss"), POOL)
    assert len(handlers) == 9
    assert len(set(handlers)) == 9


def test_no_holes_remain():
    for handler in concretize_all(_sketch("c0 * cwnd + c1 * mss"), POOL):
        assert not ast.holes(handler)


def test_cap_triggers_sampling():
    pool = tuple(float(v) for v in range(10))
    sketch = _sketch("(c0 < c1) ? c2 * cwnd : c3 * cwnd")
    handlers = concretize_all(sketch, pool, cap=20, seed=1)
    assert len(handlers) == 20
    assert len(set(handlers)) == 20  # sampled without duplicates


def test_sampling_deterministic():
    pool = tuple(float(v) for v in range(10))
    sketch = _sketch("(c0 < c1) ? c2 * cwnd : c3 * cwnd")
    first = concretize_all(sketch, pool, cap=15, seed=7)
    second = concretize_all(sketch, pool, cap=15, seed=7)
    assert first == second


def test_completion_count():
    assert _sketch("cwnd + c0 * reno_inc").completion_count(10) == 10
    assert _sketch("c0 * cwnd + c1").completion_count(10) == 100
    assert _sketch("cwnd + mss").completion_count(10) == 1


def test_lazy_generator():
    gen = concretizations(_sketch("cwnd + c0 * reno_inc"), POOL)
    first = next(gen)
    assert not ast.holes(first)
