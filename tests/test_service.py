"""Service layer: spool specs, serve(), the submit/serve CLI pair, and
crash recovery through the spool (kill -> steal leases -> resume)."""

import json
import os
import subprocess
import sys

import pytest

from repro.cli import main
from repro.dsl import family, with_budget
from repro.errors import SynthesisError
from repro.pipeline import reverse_engineer
from repro.service import build_job, load_specs, serve, submit_job
from repro.synth.refinement import SynthesisConfig
from repro.trace.io import save_traces

FAST_OVERRIDES = {
    "initial_samples": 4,
    "initial_keep": 3,
    "completion_cap": 8,
    "max_iterations": 2,
    "exhaustive_cap": 120,
}


@pytest.fixture()
def archive(reno_trace, tmp_path):
    path = tmp_path / "reno.json"
    save_traces([reno_trace], str(path))
    return str(path)


def _submit(spool, job_id, archive, **kwargs):
    return submit_job(
        spool,
        job_id,
        traces=archive,
        dsl="reno",
        max_depth=3,
        max_nodes=4,
        config=dict(FAST_OVERRIDES),
        **kwargs,
    )


# ------------------------------------------------------------------- specs


def test_submit_requires_exactly_one_source(tmp_path):
    with pytest.raises(SynthesisError):
        submit_job(str(tmp_path), "job")
    with pytest.raises(SynthesisError):
        submit_job(str(tmp_path), "job", traces="t.json", cca="reno")


def test_submit_rejects_unknown_config_key(tmp_path):
    with pytest.raises(SynthesisError, match="checkpoint_path"):
        submit_job(
            str(tmp_path),
            "job",
            cca="reno",
            config={"checkpoint_path": "/tmp/x"},
        )
    with pytest.raises(SynthesisError, match="nope"):
        submit_job(str(tmp_path), "job", cca="reno", config={"nope": 1})


def test_submit_rejects_unknown_dsl(tmp_path):
    with pytest.raises(SynthesisError, match="marsian"):
        submit_job(str(tmp_path), "job", cca="reno", dsl="marsian")


def test_load_specs_sorted_and_garbage_tolerant(tmp_path, archive):
    spool = str(tmp_path / "spool")
    _submit(spool, "zeta", archive)
    _submit(spool, "alpha", archive)
    with open(
        os.path.join(spool, "queue", "broken.json"), "w", encoding="utf-8"
    ) as handle:
        handle.write("{not json")
    specs = load_specs(spool)
    assert [spec["job_id"] for spec in specs] == ["alpha", "zeta"]


def test_build_job_fresh_checkpoint_not_resumed(tmp_path, archive):
    spool = str(tmp_path / "spool")
    _submit(spool, "fresh", archive, priority=3)
    (spec,) = load_specs(spool)
    job = build_job(spool, spec)
    assert job.job_id == "fresh"
    assert job.priority == 3
    assert not job.resumed
    assert job.checkpoint_path.endswith(
        os.path.join("checkpoints", "fresh.jsonl")
    )


# ------------------------------------------------------------------- serve


def test_serve_completes_fleet_and_matches_direct_run(
    tmp_path, archive, reno_trace
):
    spool = str(tmp_path / "spool")
    _submit(spool, "one", archive)
    _submit(spool, "two", archive)
    snapshots = serve(spool, workers=1, quantum_tasks=5)
    assert sorted(snapshots) == ["one", "two"]
    direct = reverse_engineer(
        [reno_trace],
        dsl=with_budget(family("reno"), max_depth=3, max_nodes=4),
        config=SynthesisConfig(**FAST_OVERRIDES),
    )
    for snap in snapshots.values():
        assert snap["state"] == "completed"
        assert snap["best_expression"] == direct.expression
        assert snap["best_distance"] == pytest.approx(direct.distance)


def test_serve_skips_already_completed_jobs(tmp_path, archive):
    spool = str(tmp_path / "spool")
    _submit(spool, "done", archive)
    first = serve(spool, workers=1)
    assert first["done"]["state"] == "completed"
    # Results and checkpoints persist; a second serve resubmits nothing.
    again = serve(spool, workers=1)
    assert again["done"]["state"] == "completed"
    results = os.path.join(spool, "results", "done.jsonl")
    with open(results, "r", encoding="utf-8") as handle:
        lines_after = len(handle.read().splitlines())
    third = serve(spool, workers=1)
    with open(results, "r", encoding="utf-8") as handle:
        assert len(handle.read().splitlines()) == lines_after
    assert third == again


# --------------------------------------------------------------------- CLI


def test_cli_submit_writes_spec(tmp_path, archive, capsys):
    spool = str(tmp_path / "spool")
    code = main(
        [
            "submit", "--spool", spool, "--job-id", "cli-job",
            "--traces", archive, "--dsl", "reno",
            "--max-depth", "3", "--max-nodes", "4",
            "--samples", "4", "--keep", "3", "--iterations", "2",
            "--priority", "2",
        ]
    )
    assert code == 0
    assert "queued cli-job" in capsys.readouterr().out
    (spec,) = load_specs(spool)
    assert spec["job_id"] == "cli-job"
    assert spec["priority"] == 2
    assert spec["config"]["initial_samples"] == 4
    assert spec["trace_policy"] == "repair"


def test_cli_submit_requires_one_source(tmp_path):
    with pytest.raises(SystemExit):
        main(["submit", "--spool", str(tmp_path), "--job-id", "x"])


def test_cli_serve_reports_fleet_json(tmp_path, archive, capsys):
    spool = str(tmp_path / "spool")
    _submit(spool, "alpha", archive)
    _submit(spool, "beta", archive)
    code = main(
        ["serve", "--spool", spool, "--quantum", "5", "--report", "json"]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert sorted(payload["jobs"]) == ["alpha", "beta"]
    assert payload["fleet"]["submitted"] == 2
    assert payload["fleet"]["completed"] == 2
    assert payload["fleet"]["preemptions"] > 0
    assert payload["fleet"]["jobs"]["alpha"]["state"] == "completed"


def test_cli_serve_text_summary(tmp_path, archive, capsys):
    spool = str(tmp_path / "spool")
    _submit(spool, "solo", archive)
    assert main(["serve", "--spool", spool]) == 0
    out = capsys.readouterr().out
    assert "solo: completed" in out
    assert "fleet:  1 job(s) submitted" in out
    assert "fleet jobs" in out


# ----------------------------------------------------------- crash recovery


def test_killed_serve_resumes_from_spool(tmp_path, archive, reno_trace):
    """A serve killed mid-fleet (exit 70, leases left on disk) is fully
    recovered by a successor with --steal-leases: every job completes
    with the same answer an uninterrupted run produces."""
    spool = str(tmp_path / "spool")
    for job_id in ("one", "two"):
        _submit(spool, job_id, archive)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, ["src", env.get("PYTHONPATH")])
    )
    killed = subprocess.run(
        [
            sys.executable, "-m", "repro", "serve",
            "--spool", spool, "--quantum", "3",
            "--exit-after-slices", "4",
        ],
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert killed.returncode == 70, killed.stderr
    leases = [
        name
        for name in os.listdir(os.path.join(spool, "checkpoints"))
        if name.endswith(".lease")
    ]
    assert leases, "crashed serve must leave its leases behind"
    snapshots = serve(spool, workers=1, quantum_tasks=3, steal_leases=True)
    direct = reverse_engineer(
        [reno_trace],
        dsl=with_budget(family("reno"), max_depth=3, max_nodes=4),
        config=SynthesisConfig(**FAST_OVERRIDES),
    )
    for job_id in ("one", "two"):
        assert snapshots[job_id]["state"] == "completed"
        assert snapshots[job_id]["best_expression"] == direct.expression
