"""Shared fixtures: small simulated traces reused across the suite.

Simulation is deterministic, so session-scoped fixtures keep the suite
fast without coupling tests: treat the returned objects as read-only.
"""

from __future__ import annotations

import pytest

from repro.cca import make_cca
from repro.netsim import Environment, simulate
from repro.trace import Trace, TraceSegment, segment_trace


@pytest.fixture(scope="session")
def small_env() -> Environment:
    return Environment(bandwidth_mbps=10.0, rtt_ms=50.0)


@pytest.fixture(scope="session")
def reno_trace(small_env) -> Trace:
    return simulate(make_cca("reno"), small_env, duration=20.0)


@pytest.fixture(scope="session")
def vegas_trace(small_env) -> Trace:
    return simulate(make_cca("vegas"), small_env, duration=20.0)


@pytest.fixture(scope="session")
def bbr_trace(small_env) -> Trace:
    return simulate(make_cca("bbr"), small_env, duration=20.0)


@pytest.fixture(scope="session")
def cubic_trace(small_env) -> Trace:
    return simulate(make_cca("cubic"), small_env, duration=20.0)


@pytest.fixture(scope="session")
def reno_segments(reno_trace) -> list[TraceSegment]:
    segments = segment_trace(reno_trace)
    assert segments, "reno trace must yield segments"
    return segments


@pytest.fixture(scope="session")
def env_matrix() -> tuple[Environment, ...]:
    return (
        Environment(bandwidth_mbps=5.0, rtt_ms=25.0),
        Environment(bandwidth_mbps=10.0, rtt_ms=50.0),
        Environment(bandwidth_mbps=15.0, rtt_ms=80.0),
    )
