"""Reporting-helper tests."""

from repro.reporting import format_table, format_series, sparkline


def test_format_table_alignment():
    text = format_table(
        ["cca", "distance"],
        [["reno", 18.84], ["bbr", 195.21]],
        title="Table 2",
    )
    lines = text.splitlines()
    assert lines[0] == "Table 2"
    assert lines[1].startswith("cca ")
    assert set(lines[2]) <= {"-", "+"}
    assert "reno" in lines[3] and "18.84" in lines[3]
    # Columns align: header and row pipes at the same offsets.
    assert lines[1].index("|") == lines[3].index("|")


def test_format_table_empty_rows():
    text = format_table(["a", "b"], [])
    assert "a" in text and "b" in text


def test_sparkline_range():
    line = sparkline([0, 1, 2, 3, 4, 5])
    assert len(line) == 6
    assert line[0] == "▁" and line[-1] == "█"


def test_sparkline_resamples_to_width():
    assert len(sparkline(list(range(1000)), width=40)) == 40


def test_sparkline_flat_series():
    assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"


def test_sparkline_empty():
    assert sparkline([]) == ""


def test_format_series():
    text = format_series("cwnd", [10.0, 20.0, 30.0])
    assert text.startswith("cwnd")
    assert "[10..30]" in text


def test_format_series_empty():
    assert "(empty)" in format_series("x", [])
