"""Reporting-helper tests."""

from repro.reporting import (
    format_run_summary,
    format_series,
    format_table,
    sparkline,
)


def test_format_table_alignment():
    text = format_table(
        ["cca", "distance"],
        [["reno", 18.84], ["bbr", 195.21]],
        title="Table 2",
    )
    lines = text.splitlines()
    assert lines[0] == "Table 2"
    assert lines[1].startswith("cca ")
    assert set(lines[2]) <= {"-", "+"}
    assert "reno" in lines[3] and "18.84" in lines[3]
    # Columns align: header and row pipes at the same offsets.
    assert lines[1].index("|") == lines[3].index("|")


def test_format_table_empty_rows():
    text = format_table(["a", "b"], [])
    assert "a" in text and "b" in text


def test_sparkline_range():
    line = sparkline([0, 1, 2, 3, 4, 5])
    assert len(line) == 6
    assert line[0] == "▁" and line[-1] == "█"


def test_sparkline_resamples_to_width():
    assert len(sparkline(list(range(1000)), width=40)) == 40


def test_sparkline_flat_series():
    assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"


def test_sparkline_empty():
    assert sparkline([]) == ""


def test_format_series():
    text = format_series("cwnd", [10.0, 20.0, 30.0])
    assert text.startswith("cwnd")
    assert "[10..30]" in text


def test_format_series_empty():
    assert "(empty)" in format_series("x", [])


def test_run_summary_faults_line_and_quarantine_table():
    from repro.reporting import format_run_summary
    from repro.runtime.events import (
        DegradedToSerial,
        PoolRebuilt,
        SketchQuarantined,
        WorkerCrashed,
    )

    events = [
        WorkerCrashed(reason="worker-crash", detail="pool broken"),
        PoolRebuilt(rebuilds=1, backoff_seconds=0.05),
        SketchQuarantined(sketch="c0 * mss", reason="timeout", detail="0.3s"),
        DegradedToSerial(reason="3 consecutive pool failures"),
    ]
    text = format_run_summary(events)
    assert "1 worker crash(es)" in text
    assert "1 pool rebuild(s)" in text
    assert "1 sketch(es) quarantined" in text
    assert "degraded to serial (3 consecutive pool failures)" in text
    assert "quarantined sketches" in text
    assert "c0 * mss" in text and "timeout" in text


def test_run_summary_silent_on_healthy_run():
    from repro.reporting import format_run_summary

    assert "faults" not in format_run_summary([])


def test_run_summary_scoring_prunes_line():
    from repro.reporting import format_run_summary
    from repro.runtime.events import ScoringStats

    events = [
        ScoringStats(
            batched_waves=5, lb_pruned=10, dp_abandoned=1, candidates_pruned=2
        ),
        ScoringStats(
            batched_waves=9, lb_pruned=40, dp_abandoned=3, candidates_pruned=7
        ),
    ]
    text = format_run_summary(events)
    # The latest (cumulative) snapshot wins, named counters included.
    assert "40 lb_pruned" in text
    assert "3 dp_abandoned" in text
    assert "7 candidates dropped" in text
    assert "9 batched_waves" in text


def test_scoring_stats_event_payload_roundtrips():
    from repro.runtime.events import ScoringStats, event_payload

    payload = event_payload(
        ScoringStats(
            batched_waves=1,
            lb_pruned=2,
            dp_abandoned=3,
            candidates_pruned=4,
            warm_start_pruned=5,
            fused_waves=6,
            fused_tasks=7,
            peak_in_flight=8,
            mean_occupancy=0.75,
            batched_dtw_sweeps=9,
            envelope_precompute_ms=1.25,
            shm_bytes=4096,
            broadcast_bytes_saved=16384,
        )
    )
    assert payload == {
        "event": "scoring_stats",
        "batched_waves": 1,
        "lb_pruned": 2,
        "dp_abandoned": 3,
        "candidates_pruned": 4,
        "warm_start_pruned": 5,
        "fused_waves": 6,
        "fused_tasks": 7,
        "peak_in_flight": 8,
        "mean_occupancy": 0.75,
        "batched_dtw_sweeps": 9,
        "envelope_precompute_ms": 1.25,
        "shm_bytes": 4096,
        "broadcast_bytes_saved": 16384,
    }


def test_run_summary_wave_line():
    from repro.reporting import format_run_summary
    from repro.runtime.events import ScoringStats

    quiet = format_run_summary(
        [ScoringStats(batched_waves=1, lb_pruned=0, dp_abandoned=0,
                      candidates_pruned=0)]
    )
    assert "waves:" not in quiet  # per-bucket runs keep the old summary
    text = format_run_summary(
        [
            ScoringStats(
                batched_waves=9,
                lb_pruned=40,
                dp_abandoned=3,
                candidates_pruned=7,
                warm_start_pruned=11,
                fused_waves=4,
                fused_tasks=120,
                peak_in_flight=16,
                mean_occupancy=0.82,
            )
        ]
    )
    assert "4 fused wave(s)" in text
    assert "120 task(s)" in text
    assert "peak 16 in flight" in text
    assert "82% mean occupancy" in text
    assert "11 warm-start prune(s)" in text


def test_run_summary_triage_and_quorum_lines():
    from repro.runtime.events import (
        DegradedInputs,
        TraceRepairApplied,
        TraceTriaged,
    )

    events = [
        TraceTriaged(
            trace="reno/baseline", action="clean", quality=1.0, defects={}
        ),
        TraceRepairApplied(
            trace="reno/noisy", repair="duplicate_acks", touched=5
        ),
        TraceTriaged(
            trace="reno/noisy",
            action="repaired",
            quality=0.95,
            defects={"duplicate_ack": 5},
        ),
        TraceTriaged(
            trace="reno/broken",
            action="rejected",
            quality=0.0,
            defects={"empty_trace": 1},
            reason="fatal defect(s): empty_trace",
        ),
        DegradedInputs(
            total_segments=6, usable=1, excluded=3, backfilled=1, min_quorum=2
        ),
    ]
    text = format_run_summary(events)
    assert "triage: 3 trace(s)" in text
    assert "1 repaired" in text
    assert "1 rejected" in text
    assert "5 record(s) touched" in text
    assert "triaged traces" in text  # the per-trace table
    assert "duplicate_ack x5" in text
    assert "quorum: 1/6 segment(s) usable" in text
    assert "backfilled to hold the 2-segment quorum" in text


def test_run_summary_silent_without_triage():
    assert "triage" not in format_run_summary([])


def _fleet_events():
    from repro.runtime.events import (
        JobCompleted,
        JobFailed,
        JobPreempted,
        JobProgress,
        JobStarted,
        JobSubmitted,
        LeaseStolen,
    )

    return [
        JobSubmitted(job_id="alpha", priority=5),
        JobSubmitted(job_id="beta", priority=0),
        JobStarted(job_id="alpha", resumed=True),
        JobStarted(job_id="beta", resumed=False),
        LeaseStolen(job_id="alpha", path="a.lease", previous_owner="dead"),
        JobPreempted(job_id="alpha", phase="refinement", groups_remaining=2),
        JobPreempted(job_id="beta", phase="refinement", groups_remaining=1),
        JobProgress(
            job_id="alpha",
            iteration=1,
            best_distance=4.5,
            expression="cwnd + mss",
            handlers_scored=40,
        ),
        JobCompleted(
            job_id="alpha",
            best_distance=4.25,
            expression="cwnd + mss",
            iterations=2,
            handlers_scored=80,
            waves=6,
        ),
        JobFailed(job_id="beta", error="ValueError: bad trace"),
    ]


def test_fleet_rollup_aggregates_job_events():
    from repro.reporting import fleet_rollup

    rollup = fleet_rollup(_fleet_events())
    assert rollup["submitted"] == 2
    assert rollup["completed"] == 1
    assert rollup["failed"] == 1
    assert rollup["resumed"] == 1
    assert rollup["preemptions"] == 2
    assert rollup["leases_stolen"] == 1
    alpha = rollup["jobs"]["alpha"]
    assert alpha["priority"] == 5
    assert alpha["state"] == "completed"
    assert alpha["resumed"] is True
    assert alpha["best_distance"] == 4.25
    assert alpha["expression"] == "cwnd + mss"
    assert alpha["waves"] == 6
    beta = rollup["jobs"]["beta"]
    assert beta["state"] == "failed"
    assert beta["error"] == "ValueError: bad trace"


def test_fleet_rollup_none_without_job_events():
    from repro.reporting import fleet_rollup
    from repro.runtime.events import PoolSpawned

    assert fleet_rollup([]) is None
    assert fleet_rollup([PoolSpawned(workers=2)]) is None


def test_run_summary_renders_fleet_section():
    text = format_run_summary(_fleet_events())
    assert "fleet:  2 job(s) submitted" in text
    assert "1 completed" in text
    assert "1 failed" in text
    assert "1 resumed" in text
    assert "2 preemption(s)" in text
    assert "1 lease(s) stolen" in text
    assert "fleet jobs" in text
    lines = text.splitlines()
    alpha_row = next(line for line in lines if line.startswith("alpha"))
    assert "completed" in alpha_row and "4.250" in alpha_row
    beta_row = next(line for line in lines if line.startswith("beta"))
    assert "failed" in beta_row and "-" in beta_row


def test_run_summary_silent_without_fleet_events():
    from repro.runtime.events import PoolSpawned

    text = format_run_summary([PoolSpawned(workers=2)])
    assert "fleet" not in text


def _resilience_events():
    from repro.runtime.events import (
        HeartbeatMissed,
        JobCompleted,
        JobQuarantined,
        JobRetried,
        JobStarted,
        JobSubmitted,
        JobTakenOver,
        ServerDrained,
        ServerStarted,
    )

    return [
        ServerStarted(server="s1", spool="/spool", workers=1),
        ServerStarted(server="s2", spool="/spool", workers=1),
        JobSubmitted(job_id="alpha", priority=0),
        JobSubmitted(job_id="poison", priority=0),
        JobStarted(job_id="alpha", resumed=False),
        JobStarted(job_id="poison", resumed=False),
        HeartbeatMissed(
            job_id="alpha", owner="s1", age_seconds=3.2, ttl_seconds=1.0
        ),
        JobTakenOver(
            job_id="alpha", server="s2", previous_owner="s1", attempts=2
        ),
        JobRetried(
            job_id="alpha",
            server="s2",
            attempts=2,
            crashes=1,
            backoff_seconds=0.0,
        ),
        JobCompleted(
            job_id="alpha",
            best_distance=1.5,
            expression="cwnd + mss",
            iterations=2,
            handlers_scored=40,
            waves=4,
        ),
        JobQuarantined(
            job_id="poison",
            server="s2",
            attempts=3,
            crashes=3,
            reason="retry-budget-exhausted",
            detail="job killed its server 3 time(s)",
        ),
        ServerDrained(server="s2", jobs_released=0, slices_dispatched=9),
    ]


def test_fleet_rollup_aggregates_resilience_events():
    from repro.reporting import fleet_rollup

    rollup = fleet_rollup(_resilience_events())
    assert rollup["heartbeats_missed"] == 1
    assert rollup["takeovers"] == 1
    assert rollup["retries"] == 1
    assert rollup["quarantined"] == 1
    assert rollup["drained"] == 1
    alpha = rollup["jobs"]["alpha"]
    assert alpha["takeovers"] == 1
    assert alpha["retries"] == 1
    assert alpha["crashes"] == 1
    assert alpha["state"] == "completed"
    poison = rollup["jobs"]["poison"]
    assert poison["state"] == "quarantined"
    assert poison["crashes"] == 3
    assert poison["error"].startswith("retry-budget-exhausted:")
    servers = rollup["servers"]
    assert servers["s1"]["state"] == "dead"
    assert servers["s1"]["heartbeats_missed"] == 1
    assert servers["s2"]["state"] == "drained"
    assert servers["s2"]["jobs_taken_over"] == 1


def test_server_started_alone_yields_a_rollup():
    from repro.reporting import fleet_rollup
    from repro.runtime.events import ServerStarted

    rollup = fleet_rollup([ServerStarted(server="s1", spool="/s", workers=1)])
    assert rollup is not None
    assert rollup["servers"]["s1"]["state"] == "serving"


def test_run_summary_renders_resilience_section():
    text = format_run_summary(_resilience_events())
    assert "1 heartbeat(s) missed" in text
    assert "1 takeover(s)" in text
    assert "1 retry(ies)" in text
    assert "1 quarantined" in text
    assert "1 server(s) drained" in text
    assert "fleet servers" in text
    lines = text.splitlines()
    s1_row = next(line for line in lines if line.startswith("s1"))
    assert "dead" in s1_row
    s2_row = next(line for line in lines if line.startswith("s2"))
    assert "drained" in s2_row
