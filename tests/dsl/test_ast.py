"""Unit tests for the DSL AST node types and tree utilities."""

import pytest

from repro.dsl import ast
from repro.dsl.parser import parse


def test_const_hole_detection():
    assert ast.Const(None, 0).is_hole
    assert not ast.Const(1.5).is_hole


def test_binop_rejects_unknown_operator():
    with pytest.raises(ValueError):
        ast.BinOp("^", ast.Const(1.0), ast.Const(2.0))


def test_cmp_rejects_unknown_operator():
    with pytest.raises(ValueError):
        ast.Cmp("<=", ast.Const(1.0), ast.Const(2.0))


def test_children_order_binop():
    expr = ast.BinOp("+", ast.Signal("cwnd"), ast.Const(1.0))
    assert ast.children(expr) == (ast.Signal("cwnd"), ast.Const(1.0))


def test_children_order_cond():
    pred = ast.Cmp("<", ast.Signal("rtt"), ast.Signal("min_rtt"))
    expr = ast.Cond(pred, ast.Const(1.0), ast.Const(2.0))
    assert ast.children(expr) == (pred, ast.Const(1.0), ast.Const(2.0))


def test_with_children_replaces_in_order():
    expr = ast.BinOp("*", ast.Signal("cwnd"), ast.Const(2.0))
    replaced = ast.with_children(expr, (ast.Signal("mss"), ast.Const(3.0)))
    assert replaced == ast.BinOp("*", ast.Signal("mss"), ast.Const(3.0))


def test_with_children_arity_mismatch():
    expr = ast.BinOp("*", ast.Signal("cwnd"), ast.Const(2.0))
    with pytest.raises(ValueError):
        ast.with_children(expr, (ast.Signal("mss"),))


def test_walk_preorder():
    expr = parse("cwnd + mss * acked_bytes")
    names = [
        node.name for node in ast.walk(expr) if isinstance(node, ast.Signal)
    ]
    assert names == ["cwnd", "mss", "acked_bytes"]


def test_depth_counts_leaves_as_one():
    assert ast.depth(ast.Signal("cwnd")) == 1
    assert ast.depth(parse("cwnd + mss")) == 2
    assert ast.depth(parse("cwnd + mss * acked_bytes")) == 3


def test_macro_counts_as_single_leaf():
    expr = parse("cwnd + reno_inc")
    assert ast.depth(expr) == 2
    assert ast.node_count(expr) == 3


def test_node_count():
    assert ast.node_count(parse("cwnd")) == 1
    assert ast.node_count(parse("(rtt < min_rtt) ? cwnd : mss")) == 6


def test_holes_preorder_and_rename():
    expr = parse("c3 * cwnd + c7")
    renamed = ast.rename_holes(expr)
    ids = [hole.hole_id for hole in ast.holes(renamed)]
    assert ids == [0, 1]


def test_fill_holes():
    expr = ast.rename_holes(parse("c0 * cwnd + c1"))
    filled = ast.fill_holes(expr, {0: 0.5, 1: 2.0})
    assert not ast.holes(filled)
    assert filled == parse("0.5 * cwnd + 2")


def test_fill_holes_missing_assignment():
    expr = ast.rename_holes(parse("c0 * cwnd"))
    with pytest.raises(KeyError):
        ast.fill_holes(expr, {})


def test_operators_used_tokens():
    expr = parse("(vegas_diff < 1) ? cwnd + 0.7 * reno_inc : cwnd / 2")
    assert ast.operators_used(expr) == frozenset(
        {"cond", "cmp", "+", "*", "/"}
    )


def test_operators_used_modeq_and_cube():
    expr = parse("(cwnd % 2.7 == 0) ? cube(time_since_loss) : mss")
    assert ast.operators_used(expr) == frozenset({"cond", "modeq", "cube"})


def test_signals_and_macros_used():
    expr = parse("cwnd + reno_inc * rtt")
    assert ast.signals_used(expr) == frozenset({"cwnd", "rtt"})
    assert ast.macros_used(expr) == frozenset({"reno_inc"})


def test_expr_equality_is_structural():
    assert parse("cwnd + mss") == parse("cwnd + mss")
    assert parse("cwnd + mss") != parse("mss + cwnd")
