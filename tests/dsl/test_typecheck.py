"""Type/unit checker tests, including the paper's Cubic limitation."""

import pytest

from repro.dsl.parser import parse
from repro.dsl.typecheck import check_handler, infer_unit, is_well_formed
from repro.errors import TypeCheckError, UnitError
from repro.units import BYTES, DIMENSIONLESS, SECONDS


def test_signal_units():
    assert infer_unit(parse("cwnd")) == BYTES
    assert infer_unit(parse("rtt")) == SECONDS
    assert infer_unit(parse("vegas_diff")) == DIMENSIONLESS


def test_constant_is_polymorphic():
    assert infer_unit(parse("2.5")) is None


def test_addition_requires_matching_units():
    with pytest.raises(UnitError):
        infer_unit(parse("cwnd + rtt"))


def test_constant_absorbs_any_unit():
    # Hybla's 8 * rtt * reno_inc: the 8 absorbs 1/seconds.
    assert check_handler(parse("cwnd + 8 * rtt * reno_inc")) is None


def test_rate_times_rtt_is_bytes():
    assert infer_unit(parse("ack_rate * min_rtt")) == BYTES


def test_handler_must_be_bytes():
    with pytest.raises(UnitError):
        check_handler(parse("rtt + min_rtt"))


def test_cubic_cube_root_limitation():
    """§5.5: the synthesized Cubic handler has inconsistent units (time³
    added to bytes) and must be rejected under strict checking; the
    fine-tuned handler only survives because its constants absorb units
    (wildcards), which is why the Cubic DSL disables strict units."""
    synthesized = parse("cwnd + cube(time_since_loss)")
    with pytest.raises(UnitError):
        check_handler(synthesized, strict_units=True)
    assert check_handler(synthesized, strict_units=False) is None

    finetuned = parse("wmax + cube(8 * time_since_loss - cbrt(24 * wmax))")
    # Unit-polymorphic constants make this checkable in our algebra; the
    # paper's integer-only SMT encoding could not express it at all.
    assert check_handler(finetuned, strict_units=True) is None


def test_cbrt_of_known_noncubic_unit_rejected():
    with pytest.raises(UnitError):
        infer_unit(parse("cbrt(cwnd)"))


def test_cube_of_time_is_not_bytes():
    with pytest.raises(UnitError):
        check_handler(parse("cwnd + cube(time_since_loss)"))


def test_unknown_signal_rejected():
    with pytest.raises(TypeCheckError):
        check_handler(parse("cwnd + bogus_signal"))


def test_allowed_signals_restriction():
    expr = parse("cwnd + rtt * ack_rate * 1")
    assert is_well_formed(expr, allowed_signals=frozenset({"cwnd", "rtt", "ack_rate"}))
    assert not is_well_formed(expr, allowed_signals=frozenset({"cwnd"}))


def test_comparison_unit_consistency():
    with pytest.raises(UnitError):
        infer_unit(parse("(rtt < cwnd) ? mss : mss * 2"))


def test_cond_branches_must_unify():
    with pytest.raises(UnitError):
        infer_unit(parse("(rtt < min_rtt) ? cwnd : rtt"))


def test_cond_branch_with_constant_unifies():
    assert infer_unit(parse("(rtt < min_rtt) ? cwnd : 0")) == BYTES


def test_table2_finetuned_handlers_type_check():
    """Every fine-tuned handler except Cubic passes strict unit checking."""
    from repro.handlers import FINETUNED_TEXT

    for name, text in FINETUNED_TEXT.items():
        strict = name != "cubic"
        assert is_well_formed(parse(text), strict_units=strict), name
