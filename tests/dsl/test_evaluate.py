"""Evaluator tests: semantics, totality, and corner-case saturation."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsl import ast
from repro.dsl.evaluate import MODEQ_TOLERANCE, evaluate, evaluate_bool
from repro.dsl.parser import parse
from repro.errors import EvaluationError

ENV = {
    "cwnd": 30000.0,
    "mss": 1500.0,
    "acked_bytes": 1500.0,
    "rtt": 0.05,
    "min_rtt": 0.04,
    "max_rtt": 0.08,
    "ack_rate": 300000.0,
    "time_since_loss": 2.0,
}


def test_constant():
    assert evaluate(parse("2.5"), ENV) == 2.5


def test_signal_lookup():
    assert evaluate(parse("cwnd"), ENV) == 30000.0


def test_missing_signal_raises():
    with pytest.raises(EvaluationError):
        evaluate(parse("wmax"), ENV)


def test_hole_raises():
    with pytest.raises(EvaluationError):
        evaluate(parse("c0 * cwnd"), ENV)


def test_arithmetic():
    assert evaluate(parse("cwnd + mss"), ENV) == 31500.0
    assert evaluate(parse("cwnd - mss"), ENV) == 28500.0
    assert evaluate(parse("mss * 2"), ENV) == 3000.0
    assert evaluate(parse("cwnd / mss"), ENV) == 20.0


def test_macro_expansion_reno_inc():
    # acked * mss / cwnd = 1500 * 1500 / 30000 = 75
    assert evaluate(parse("reno_inc"), ENV) == 75.0


def test_macro_expansion_vegas_diff():
    # (0.05 - 0.04) * 300000 / 1500 = 2 packets queued
    assert evaluate(parse("vegas_diff"), ENV) == pytest.approx(2.0)


def test_division_by_zero_saturates():
    env = dict(ENV, mss=0.0)
    value = evaluate(parse("cwnd / mss"), env)
    assert math.isfinite(value) and value > 1e17


def test_overflow_clamps():
    value = evaluate(parse("cube(cube(cwnd))"), ENV)
    assert math.isfinite(value)


def test_cbrt_of_negative():
    env = dict(ENV, cwnd=-27.0)
    assert evaluate(parse("cbrt(cwnd)"), env) == pytest.approx(-3.0)


def test_cube_cbrt_inverse():
    assert evaluate(parse("cbrt(cube(mss))"), ENV) == pytest.approx(1500.0)


def test_conditional_branches():
    assert evaluate(parse("(rtt < min_rtt) ? 1 : 2"), ENV) == 2.0
    assert evaluate(parse("(rtt > min_rtt) ? 1 : 2"), ENV) == 1.0


def test_modeq_exact_multiple():
    env = dict(ENV, cwnd=27.0)
    assert evaluate_bool(parse("(cwnd % 2.7 == 0) ? 1 : 0").pred, env)


def test_modeq_tolerance_band():
    modulus = 2.7
    near = 27.0 + 0.9 * MODEQ_TOLERANCE * modulus
    env = dict(ENV, cwnd=near)
    assert evaluate_bool(ast.ModEq(ast.Signal("cwnd"), ast.Const(modulus)), env)


def test_modeq_far_from_multiple():
    env = dict(ENV, cwnd=27.0 + 1.35)  # half-way between multiples
    assert not evaluate_bool(
        ast.ModEq(ast.Signal("cwnd"), ast.Const(2.7)), env
    )


def test_modeq_zero_modulus_is_false():
    assert not evaluate_bool(
        ast.ModEq(ast.Signal("cwnd"), ast.Const(0.0)), ENV
    )


@given(
    st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
    st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
)
@settings(max_examples=100, deadline=None)
def test_evaluation_total_on_positive_envs(cwnd, rate):
    """Any Table 2 handler evaluates to a finite float on sane inputs."""
    from repro.handlers import FINETUNED_TEXT

    env = dict(ENV, cwnd=cwnd, ack_rate=rate, wmax=cwnd)
    for text in FINETUNED_TEXT.values():
        value = evaluate(parse(text), env)
        assert math.isfinite(value)
