"""Compiled-handler tests: exact agreement with the interpreter."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsl.compiled import compile_handler
from repro.dsl.evaluate import evaluate
from repro.dsl.parser import parse
from repro.errors import EvaluationError

ENV = {
    "cwnd": 30000.0,
    "mss": 1500.0,
    "acked_bytes": 1500.0,
    "rtt": 0.06,
    "min_rtt": 0.04,
    "max_rtt": 0.08,
    "ack_rate": 300000.0,
    "time_since_loss": 0.6,
    "ewma_rtt": 0.05,
    "wmax": 60000.0,
    "rtt_gradient": 0.01,
    "delay_gradient": 0.01,
    "inflight": 30000.0,
}


@pytest.mark.parametrize(
    "text",
    [
        "cwnd + 0.7 * reno_inc",
        "2 * mss",
        "(vegas_diff < 1) ? cwnd + mss : cwnd",
        "(cwnd % 2.7 == 0) ? 2.05 * cwnd : mss",
        "wmax + cube(8 * time_since_loss - cbrt(24 * wmax))",
        "cwnd / (rtt - rtt)",  # safe-division saturation
        "min_rtt * ack_rate * ((rtts_since_loss % 8 == 0) ? 2.6 : 2.05)",
    ],
)
def test_agrees_with_interpreter(text):
    expr = parse(text)
    compiled = compile_handler(expr)
    assert compiled.call_env(ENV) == pytest.approx(
        evaluate(expr, ENV), rel=1e-12, abs=1e-12
    )


def test_signals_collected_in_read_order():
    compiled = compile_handler(parse("rtt + min_rtt * cwnd"))
    assert set(compiled.signals) == {"rtt", "min_rtt", "cwnd"}


def test_macros_expand_to_signals():
    compiled = compile_handler(parse("reno_inc"))
    assert set(compiled.signals) == {"acked_bytes", "mss", "cwnd"}


def test_positional_call():
    compiled = compile_handler(parse("cwnd + mss"))
    args = [ENV[name] for name in compiled.signals]
    assert compiled(*args) == ENV["cwnd"] + ENV["mss"]


def test_constant_handler_takes_no_args():
    compiled = compile_handler(parse("42"))
    assert compiled.signals == ()
    assert compiled() == 42.0


def test_sketch_rejected():
    with pytest.raises(EvaluationError):
        compile_handler(parse("c0 * cwnd"))


def test_missing_signal_in_env():
    compiled = compile_handler(parse("wmax + mss"))
    with pytest.raises(EvaluationError):
        compiled.call_env({"mss": 1500.0})


def test_all_table2_handlers_compile():
    from repro.handlers import FINETUNED_TEXT, SYNTHESIZED_TEXT

    for text in list(SYNTHESIZED_TEXT.values()) + list(FINETUNED_TEXT.values()):
        compiled = compile_handler(parse(text))
        value = compiled.call_env(ENV)
        assert math.isfinite(value)


# Property: interpreter and compiled function agree on random ASTs/envs.
from tests.dsl.test_parser_printer import _ast_strategy  # noqa: E402

_env_values = st.floats(min_value=1e-4, max_value=1e6, allow_nan=False)


@given(
    _ast_strategy,
    st.fixed_dictionaries({name: _env_values for name in sorted(ENV)}),
)
@settings(max_examples=200, deadline=None)
def test_compiled_matches_interpreter_property(expr, overrides):
    from repro.dsl import ast as ast_mod

    env = dict(ENV)
    env.update(overrides)
    if ast_mod.holes(expr):
        # Compilation rejects sketches eagerly; the interpreter is lazy
        # (a hole inside an untaken branch may never be evaluated).
        with pytest.raises(EvaluationError):
            compile_handler(expr)
        return
    expected = evaluate(expr, env)
    compiled = compile_handler(expr)
    actual = compiled.call_env(env)
    if math.isfinite(expected):
        assert actual == pytest.approx(expected, rel=1e-12, abs=1e-12)
