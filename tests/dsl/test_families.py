"""Family sub-DSL definition tests (§3.3, Listing 1)."""

import pytest

from repro.dsl.families import (
    CUBIC_DSL,
    DEFAULT_CONSTANT_POOL,
    DELAY_DSL,
    FAMILIES,
    RENO_DSL,
    VEGAS_DSL,
    DslSpec,
    dsl_for_classifier_label,
    family,
    with_budget,
)
from repro.errors import DslError


def test_four_builtin_families():
    assert set(FAMILIES) == {"reno", "cubic", "delay", "vegas"}


def test_reno_is_base_dsl():
    assert set(RENO_DSL.signals) == {
        "cwnd",
        "mss",
        "acked_bytes",
        "time_since_loss",
    }
    assert "reno_inc" in RENO_DSL.macros
    assert "cube" not in RENO_DSL.operators


def test_cubic_extends_with_cube_ops_and_wmax():
    assert "cube" in CUBIC_DSL.operators
    assert "cbrt" in CUBIC_DSL.operators
    assert "wmax" in CUBIC_DSL.signals
    assert not CUBIC_DSL.strict_units  # §5.5


def test_delay_adds_rate_signals():
    for signal in ("rtt", "min_rtt", "max_rtt", "ack_rate", "rtt_gradient"):
        assert signal in DELAY_DSL.signals
    assert "rtts_since_loss" in DELAY_DSL.macros


def test_vegas_adds_macros():
    assert "vegas_diff" in VEGAS_DSL.macros
    assert "htcp_diff" in VEGAS_DSL.macros


def test_all_strict_except_cubic():
    for name, spec in FAMILIES.items():
        assert spec.strict_units == (name != "cubic")


def test_family_lookup():
    assert family("reno") is RENO_DSL
    with pytest.raises(DslError):
        family("quic")


def test_with_budget_renames():
    delayed = with_budget(DELAY_DSL, max_nodes=11)
    assert delayed.name == "delay-11"
    assert delayed.max_nodes == 11
    assert delayed.signals == DELAY_DSL.signals


def test_with_budget_depth_only_keeps_name():
    spec = with_budget(RENO_DSL, max_depth=3)
    assert spec.name == "reno"
    assert spec.max_depth == 3


def test_unknown_macro_rejected():
    with pytest.raises(DslError):
        DslSpec(
            name="broken",
            signals=("cwnd",),
            operators=("+",),
            macros=("nonexistent_macro",),
        )


def test_invalid_budgets_rejected():
    with pytest.raises(DslError):
        DslSpec(
            name="broken",
            signals=("cwnd",),
            operators=("+",),
            macros=(),
            max_depth=0,
        )


def test_component_count():
    # 4 signals + 7 operators + 1 macro + constants = 13 for the base DSL.
    assert RENO_DSL.component_count == 13


def test_leaves():
    assert RENO_DSL.leaves == RENO_DSL.signals + RENO_DSL.macros


def test_constant_pool_values_positive():
    assert all(value > 0 for value in DEFAULT_CONSTANT_POOL)
    assert len(DEFAULT_CONSTANT_POOL) == len(set(DEFAULT_CONSTANT_POOL))


@pytest.mark.parametrize(
    "label,expected",
    [
        ("reno", "reno"),
        ("westwood", "reno"),
        ("bbr", "delay"),
        ("hybla", "delay"),
        ("vegas", "vegas"),
        ("htcp", "vegas"),
        ("cubic", "cubic"),
        ("bic", "cubic"),
        ("RENO", "reno"),  # case-insensitive
        ("completely-unknown", "delay"),  # fallback
    ],
)
def test_classifier_label_mapping(label, expected):
    assert dsl_for_classifier_label(label).name == expected
