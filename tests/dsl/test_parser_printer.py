"""Parser and printer tests, including a hypothesis round-trip property."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsl import ast
from repro.dsl.parser import parse
from repro.dsl.printer import to_text
from repro.errors import ParseError


class TestParseBasics:
    def test_signal(self):
        assert parse("cwnd") == ast.Signal("cwnd")

    def test_macro(self):
        assert parse("reno_inc") == ast.Macro("reno_inc")

    def test_number(self):
        assert parse("2.5") == ast.Const(2.5)

    def test_hole(self):
        assert parse("c4") == ast.Const(None, 4)

    def test_precedence_mul_over_add(self):
        assert parse("cwnd + 2 * mss") == ast.BinOp(
            "+",
            ast.Signal("cwnd"),
            ast.BinOp("*", ast.Const(2.0), ast.Signal("mss")),
        )

    def test_left_associativity(self):
        assert parse("8 - 3 - 2") == ast.BinOp(
            "-", ast.BinOp("-", ast.Const(8.0), ast.Const(3.0)), ast.Const(2.0)
        )

    def test_parenthesized_grouping(self):
        assert parse("(cwnd + mss) * 2") == ast.BinOp(
            "*",
            ast.BinOp("+", ast.Signal("cwnd"), ast.Signal("mss")),
            ast.Const(2.0),
        )

    def test_negative_literal(self):
        assert parse("-0.7 * reno_inc") == ast.BinOp(
            "*", ast.Const(-0.7), ast.Macro("reno_inc")
        )

    def test_unary_minus_on_expression(self):
        assert parse("-cwnd") == ast.BinOp(
            "-", ast.Const(0.0), ast.Signal("cwnd")
        )

    def test_negative_literal_roundtrip(self):
        expr = parse("cwnd + -0.7 * reno_inc")
        from repro.dsl.printer import to_text

        assert parse(to_text(expr)) == expr

    def test_cube_and_cbrt(self):
        expr = parse("cube(cbrt(cwnd))")
        assert expr == ast.Cube(ast.Cbrt(ast.Signal("cwnd")))

    def test_ternary(self):
        expr = parse("(rtt < min_rtt) ? cwnd : mss")
        assert isinstance(expr, ast.Cond)
        assert expr.pred == ast.Cmp("<", ast.Signal("rtt"), ast.Signal("min_rtt"))

    def test_ternary_without_parens(self):
        expr = parse("vegas_diff > 5 ? 0.3 : 1")
        assert isinstance(expr, ast.Cond)
        assert expr.pred.op == ">"

    def test_modeq(self):
        expr = parse("(cwnd % 2.7 == 0) ? cwnd : mss")
        assert isinstance(expr.pred, ast.ModEq)

    def test_modeq_single_equals(self):
        expr = parse("(cwnd % 8 = 0) ? cwnd : mss")
        assert isinstance(expr.pred, ast.ModEq)

    def test_nested_ternary(self):
        expr = parse("(a < 1) ? mss : ((a > 5) ? cwnd : 0)".replace("a", "vegas_diff"))
        assert isinstance(expr.otherwise, ast.Cond)


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "cwnd +",
            "(cwnd",
            "cwnd)",
            "cwnd ? 1 : 2",  # number used as predicate
            "cwnd % 3 == 1",  # modular test must compare to 0
            "1 @ 2",
            "cube(cwnd",
            "(a < b ? 1 : 2",
        ],
    )
    def test_rejects(self, text):
        with pytest.raises(ParseError):
            parse(text.replace("a", "rtt").replace("b", "min_rtt"))

    def test_trailing_tokens(self):
        with pytest.raises(ParseError):
            parse("cwnd + mss extra")


# Hypothesis: generated ASTs survive print -> parse round trips.

_signals = st.sampled_from(["cwnd", "mss", "rtt", "min_rtt", "acked_bytes"])
_leaves = st.one_of(
    _signals.map(ast.Signal),
    st.sampled_from(["reno_inc", "vegas_diff"]).map(ast.Macro),
    st.floats(
        min_value=0.01, max_value=100, allow_nan=False, allow_infinity=False
    ).map(lambda value: ast.Const(round(value, 4))),
    st.integers(min_value=0, max_value=5).map(lambda i: ast.Const(None, i)),
)


def _exprs(children):
    ops = st.sampled_from(["+", "-", "*", "/"])
    bools = st.one_of(
        st.tuples(st.sampled_from(["<", ">"]), children, children).map(
            lambda t: ast.Cmp(t[0], t[1], t[2])
        ),
        st.tuples(children, children).map(lambda t: ast.ModEq(t[0], t[1])),
    )
    return st.one_of(
        st.tuples(ops, children, children).map(
            lambda t: ast.BinOp(t[0], t[1], t[2])
        ),
        st.tuples(bools, children, children).map(
            lambda t: ast.Cond(t[0], t[1], t[2])
        ),
        children.map(ast.Cube),
        children.map(ast.Cbrt),
    )


_ast_strategy = st.recursive(_leaves, _exprs, max_leaves=12)


@given(_ast_strategy)
@settings(max_examples=200, deadline=None)
def test_roundtrip_property(expr):
    assert parse(to_text(expr)) == expr


@given(_ast_strategy)
@settings(max_examples=100, deadline=None)
def test_printer_total(expr):
    text = to_text(expr)
    assert isinstance(text, str) and text
