"""Macro definition tests (Table 1)."""

import pytest

from repro.dsl import ast
from repro.dsl.macros import MACROS, expand_macros, macro_definition
from repro.dsl.evaluate import evaluate
from repro.dsl.parser import parse
from repro.dsl.typecheck import infer_unit
from repro.errors import DslError
from repro.units import BYTES, DIMENSIONLESS, SECONDS

ENV = {
    "cwnd": 30000.0,
    "mss": 1500.0,
    "acked_bytes": 1500.0,
    "rtt": 0.06,
    "min_rtt": 0.04,
    "max_rtt": 0.08,
    "ack_rate": 300000.0,
    "time_since_loss": 0.6,
    "ewma_rtt": 0.05,
}


def test_table1_macros_registered():
    assert set(MACROS) == {
        "reno_inc",
        "vegas_diff",
        "htcp_diff",
        "rtts_since_loss",
        "ewma_rtt",
    }


def test_macro_units():
    assert macro_definition("reno_inc").unit == BYTES
    assert macro_definition("vegas_diff").unit == DIMENSIONLESS
    assert macro_definition("htcp_diff").unit == DIMENSIONLESS
    assert macro_definition("rtts_since_loss").unit == DIMENSIONLESS
    assert macro_definition("ewma_rtt").unit == SECONDS


def test_macro_expansion_units_agree():
    """Each macro's declared unit matches its expansion's inferred unit."""
    for name, definition in MACROS.items():
        inferred = infer_unit(definition.expansion)
        assert inferred == definition.unit, name


def test_macro_signals_match_expansion():
    for name, definition in MACROS.items():
        used = ast.signals_used(definition.expansion)
        assert used == definition.signals, name


def test_macro_evaluates_like_expansion():
    for name, definition in MACROS.items():
        direct = evaluate(ast.Macro(name), ENV)
        expanded = evaluate(definition.expansion, ENV)
        assert direct == pytest.approx(expanded), name


def test_table1_values():
    # reno_inc = acked * mss / cwnd = 75 B
    assert evaluate(ast.Macro("reno_inc"), ENV) == pytest.approx(75.0)
    # vegas_diff = (rtt - min) * rate / mss = 0.02 * 300000 / 1500 = 4
    assert evaluate(ast.Macro("vegas_diff"), ENV) == pytest.approx(4.0)
    # htcp_diff = (rtt - min) / max = 0.25
    assert evaluate(ast.Macro("htcp_diff"), ENV) == pytest.approx(0.25)
    # rtts_since_loss = 0.6 / 0.06 = 10
    assert evaluate(ast.Macro("rtts_since_loss"), ENV) == pytest.approx(10.0)


def test_expand_macros_removes_all_macro_nodes():
    expr = parse("cwnd + 0.7 * reno_inc + vegas_diff * mss")
    expanded = expand_macros(expr)
    assert not ast.macros_used(expanded)
    assert evaluate(expr, ENV) == pytest.approx(evaluate(expanded, ENV))


def test_expand_macros_inside_conditionals():
    expr = parse("(vegas_diff < 1) ? reno_inc : 0")
    expanded = expand_macros(expr)
    assert not ast.macros_used(expanded)


def test_unknown_macro():
    with pytest.raises(DslError):
        macro_definition("bogus")


def test_macro_counts_one_node_in_enumeration():
    """§6.1: 'we encode reno-inc as a macro ... so that sub-expression
    does not increase the depth'."""
    with_macro = parse("cwnd + c0 * reno_inc")
    expanded = expand_macros(with_macro)
    assert ast.depth(with_macro) == 3
    assert ast.depth(expanded) > ast.depth(with_macro)
