"""Simplifier tests: rewrite rules and the enumeration-filter predicate."""

import pytest
from hypothesis import given, settings

from repro.dsl import ast
from repro.dsl.parser import parse
from repro.dsl.printer import to_text
from repro.dsl.simplify import is_simplifiable, simplify


@pytest.mark.parametrize(
    "source,expected",
    [
        ("cwnd * 1", "cwnd"),
        ("1 * cwnd", "cwnd"),
        ("cwnd + 0", "cwnd"),
        ("0 + cwnd", "cwnd"),
        ("cwnd - 0", "cwnd"),
        ("cwnd / 1", "cwnd"),
        ("cwnd * 0", "0"),
        ("0 / cwnd", "0"),
        ("cwnd / cwnd", "1"),
        ("cwnd - cwnd", "0"),
        ("cwnd + cwnd", "2 * cwnd"),
        ("2 + 3", "5"),
        ("2 * 3 + 1", "7"),
        ("cbrt(cube(cwnd))", "cwnd"),
        ("cube(cbrt(mss))", "mss"),
        ("cube(2)", "8"),
        ("(1 < 2) ? cwnd : mss", "cwnd"),
        ("(2 < 1) ? cwnd : mss", "mss"),
        ("(rtt < min_rtt) ? cwnd : cwnd", "cwnd"),
    ],
)
def test_rewrites(source, expected):
    assert to_text(simplify(parse(source))) == expected


def test_nested_rewrite_cascades():
    assert to_text(simplify(parse("(cwnd * 1 + 0) / 1"))) == "cwnd"


def test_simplify_fixpoint():
    expr = simplify(parse("(cwnd + 0) * (1 * mss) / mss"))
    assert simplify(expr) == expr


@pytest.mark.parametrize(
    "source",
    [
        "c0 + c1",
        "c0 * c1",
        "c0 * (c1 * cwnd)",
        "cwnd + c0 + c1",
        "cube(c0)",
        "cbrt(c0)",
        "(c0 < c1) ? cwnd : mss",
        "(c0 % c1 == 0) ? cwnd : mss",
        "cwnd * 1",
        "(rtt < min_rtt) ? mss : mss",
    ],
)
def test_simplifiable_detected(source):
    assert is_simplifiable(parse(source))


@pytest.mark.parametrize(
    "source",
    [
        "cwnd + c0 * reno_inc",
        "cwnd + reno_inc",
        "(vegas_diff < c0) ? cwnd + mss : cwnd",
        "c0 * ack_rate * min_rtt",
        "cwnd + 8 * rtt * reno_inc",
        "mss",
        "c0",
    ],
)
def test_not_simplifiable(source):
    assert not is_simplifiable(parse(source))


def test_paper_handlers_are_irreducible():
    """Table 2 outputs should be fixed points — the paper presents them
    after arithmetic simplification."""
    from repro.handlers import SYNTHESIZED_TEXT

    for name, text in SYNTHESIZED_TEXT.items():
        expr = parse(text)
        assert simplify(expr) == expr, name


# Property: simplification preserves evaluation semantics.
from tests.dsl.test_parser_printer import _ast_strategy  # noqa: E402


@given(_ast_strategy)
@settings(max_examples=150, deadline=None)
def test_simplify_preserves_semantics(expr):
    import math

    from repro.dsl.evaluate import evaluate
    from repro.errors import EvaluationError

    env = {
        "cwnd": 30000.0,
        "mss": 1500.0,
        "rtt": 0.05,
        "min_rtt": 0.04,
        "max_rtt": 0.08,
        "acked_bytes": 1500.0,
        "ack_rate": 300000.0,
    }
    simplified = simplify(expr)
    try:
        # The evaluator saturates at ~1e18; rewriting can legitimately
        # change results once any *sub*-expression hits the clamp (e.g.
        # cbrt(cube(x)) is only an identity below the cap), so the
        # property is restricted to expressions whose every intermediate
        # value stays well inside the representable range.
        for node in ast.walk(expr):
            if isinstance(node, ast.NumExpr):
                if abs(evaluate(node, env)) >= 1e15:
                    return
        # Comparisons are discontinuous: a rewrite that is mathematically
        # exact but not float-exact (cube(cbrt(x)) -> x perturbs the last
        # ulp) can flip a predicate whose sides are essentially tied, and
        # then the branches — not the rewrite — produce the difference.
        # Restrict the property to predicates that are decisively one-sided.
        for node in ast.walk(expr):
            if isinstance(node, (ast.Cmp, ast.ModEq)):
                left = evaluate(node.left, env)
                right = evaluate(node.right, env)
                if left == pytest.approx(right, rel=1e-6, abs=1e-9):
                    return
        before = evaluate(expr, env)
        after = evaluate(simplified, env)
    except EvaluationError:
        return  # holes: nothing to compare
    if math.isfinite(before) and math.isfinite(after) and abs(after) < 1e15:
        assert after == pytest.approx(before, rel=1e-6, abs=1e-9)
