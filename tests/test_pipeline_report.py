"""PipelineReport unit tests (no synthesis run needed)."""

from repro.classify.base import ClassifierVerdict
from repro.dsl import with_budget
from repro.dsl.families import RENO_DSL
from repro.dsl.parser import parse
from repro.pipeline import PipelineReport
from repro.synth.result import SynthesisResult
from repro.synth.scoring import ScoredHandler


def _report(handler_text: str, verdict=None) -> PipelineReport:
    result = SynthesisResult(
        best=ScoredHandler(parse(handler_text), 1.23),
        dsl_name="reno-5",
        initial_bucket_count=64,
        total_handlers_scored=100,
        elapsed_seconds=2.0,
    )
    return PipelineReport(
        verdict=verdict,
        dsl=with_budget(RENO_DSL, max_nodes=5),
        result=result,
        segment_count=7,
    )


def test_expression_is_simplified():
    report = _report("cwnd + (1 * reno_inc) + 0")
    assert report.expression == "cwnd + reno_inc"


def test_distance_passthrough():
    assert _report("cwnd + reno_inc").distance == 1.23


def test_summary_with_verdict():
    verdict = ClassifierVerdict(label="reno", closest="reno", distance=0.01)
    summary = _report("cwnd + reno_inc", verdict).summary()
    assert "classifier: reno" in summary
    assert "DSL 'reno-5'" in summary
    assert "1.23" in summary


def test_summary_without_verdict():
    summary = _report("cwnd + reno_inc").summary()
    assert "(skipped)" in summary


def test_summary_mentions_segments():
    assert "7 segments" in _report("cwnd + reno_inc").summary()


def test_summary_surfaces_faults():
    from dataclasses import replace
    from repro.runtime.supervise import Quarantined

    report = _report("cwnd + reno_inc")
    report.result = replace(
        report.result,
        quarantined=(Quarantined("c0 * mss", "timeout"),),
        pool_rebuilds=2,
        degraded=True,
    )
    summary = report.summary()
    assert "faults:" in summary
    assert "1 quarantined" in summary
    assert "2 pool rebuild(s)" in summary
    assert "degraded to serial" in summary


def test_summary_omits_faults_when_clean():
    assert "faults:" not in _report("cwnd + reno_inc").summary()
