"""Lower-bound cascade tests: LB validity and bounded-DTW exactness.

The batched scorer's correctness rests on two contracts proven here by
property testing: every lower bound really is a lower bound of the raw
banded-DTW cost (so a prune can never discard a would-be winner), and
``dtw_distance(bound=b)`` returns the exact distance whenever the true
distance is ``<= b`` (so the cascade is bit-identical to the unbounded
metric on every candidate it does not discard).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.dtw import (
    band_width,
    dtw_distance,
    dtw_matrix,
    inflate_bound,
)
from repro.distance.lb import (
    keogh_envelope,
    keogh_envelope_batch,
    lb_keogh,
    lb_kim,
)

_series = st.lists(
    st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
    min_size=2,
    max_size=40,
).map(np.array)

_equal_pair = st.integers(min_value=2, max_value=40).flatmap(
    lambda n: st.tuples(
        st.lists(
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
            min_size=n,
            max_size=n,
        ).map(np.array),
        st.lists(
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
            min_size=n,
            max_size=n,
        ).map(np.array),
    )
)


def _raw_cost(left, right):
    """The raw (un-normalized) banded-DTW corner the bounds must stay under."""
    return dtw_matrix(left, right)


@given(_series, _series)
@settings(max_examples=80, deadline=None)
def test_lb_kim_lower_bounds_raw_cost(a, b):
    assert lb_kim(a, b) <= _raw_cost(a, b) + 1e-9


@given(_equal_pair)
@settings(max_examples=80, deadline=None)
def test_lb_keogh_lower_bounds_raw_cost(pair):
    query, candidate = pair
    width = band_width(query.size, candidate.size)
    lower, upper = keogh_envelope(candidate, width)
    assert lb_keogh(query, lower, upper) <= _raw_cost(query, candidate) + 1e-9


@given(_equal_pair)
@settings(max_examples=80, deadline=None)
def test_lb_keogh_reverse_direction_also_valid(pair):
    """Enveloping the *query* and checking the candidate against it is
    the same bound with the roles swapped — DTW is symmetric."""
    query, candidate = pair
    width = band_width(query.size, candidate.size)
    lower, upper = keogh_envelope(query, width)
    assert (
        lb_keogh(candidate, lower, upper) <= _raw_cost(query, candidate) + 1e-9
    )


@given(_series, st.integers(min_value=0, max_value=50))
@settings(max_examples=60, deadline=None)
def test_envelope_brackets_series(series, width):
    lower, upper = keogh_envelope(series, width)
    assert np.all(lower <= series)
    assert np.all(series <= upper)


@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=2, max_value=20),
    st.integers(min_value=0, max_value=25),
)
@settings(max_examples=40, deadline=None)
def test_envelope_batch_matches_per_row(lanes, length, width):
    rng = np.random.default_rng(lanes * 1000 + length * 10 + width)
    matrix = rng.normal(size=(lanes, length)) * 100.0
    batch_lower, batch_upper = keogh_envelope_batch(matrix, width)
    for lane in range(lanes):
        lower, upper = keogh_envelope(matrix[lane], width)
        np.testing.assert_array_equal(batch_lower[lane], lower)
        np.testing.assert_array_equal(batch_upper[lane], upper)


@given(_series, _series, st.floats(min_value=0.0, max_value=2.0))
@settings(max_examples=120, deadline=None)
def test_bounded_dtw_exact_within_bound(a, b, factor):
    """``dtw_distance(bound=b)`` returns the exact distance whenever the
    true distance is ``<= b``, and only ever abandons above it."""
    exact = dtw_distance(a, b)
    bound = exact * factor + 1e-6
    bounded = dtw_distance(a, b, bound=bound)
    if exact <= bound:
        assert bounded == exact
    else:
        # Abandoning is optional (the bound is a permission, not an
        # obligation) but a returned value must be the exact one.
        assert bounded == exact or bounded == float("inf")


@given(_series, _series)
@settings(max_examples=40, deadline=None)
def test_bounded_dtw_with_infinite_or_nan_bound_is_legacy(a, b):
    exact = dtw_distance(a, b)
    assert dtw_distance(a, b, bound=float("inf")) == exact
    assert dtw_distance(a, b, bound=float("nan")) == exact
    assert dtw_distance(a, b, bound=None) == exact


def test_bounded_dtw_abandons_hopeless_candidate():
    a = np.zeros(32)
    b = np.full(32, 100.0)
    assert dtw_distance(a, b, bound=1e-6) == float("inf")
    assert dtw_matrix(a, b, bound=-1.0) == float("inf")  # corner abandoned
    cost = dtw_matrix(a, b, bound=-1.0, return_matrix=True)
    assert cost[32, 32] == float("inf")  # corner left infinite


@given(st.floats(min_value=0.0, max_value=1e12, allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_inflate_bound_adds_strictly_positive_slack(bound):
    inflated = inflate_bound(bound)
    assert inflated > bound
    assert inflated <= bound + bound * 1e-6 + 1e-8  # slack stays tiny


def test_lb_kim_rejects_empty_series():
    with pytest.raises(ValueError):
        lb_kim(np.empty(0), np.ones(3))


def test_lb_keogh_rejects_size_mismatch():
    lower, upper = keogh_envelope(np.ones(4), 2)
    with pytest.raises(ValueError):
        lb_keogh(np.ones(5), lower, upper)


def test_keogh_envelope_rejects_empty():
    with pytest.raises(ValueError):
        keogh_envelope(np.empty(0), 2)
    with pytest.raises(ValueError):
        keogh_envelope_batch(np.empty((3, 0)), 2)
