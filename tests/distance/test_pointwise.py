"""Point-wise metric and preprocessing tests."""

import numpy as np
import pytest

from repro.distance.pointwise import (
    correlation_distance,
    euclidean_distance,
    manhattan_distance,
)
from repro.distance.preprocess import align_pair, downsample, normalize_scale


class TestPreprocess:
    def test_downsample_noop_when_small(self):
        series = np.arange(10.0)
        assert np.array_equal(downsample(series, 20), series)

    def test_downsample_keeps_endpoints(self):
        series = np.arange(1000.0)
        out = downsample(series, 100)
        assert out[0] == 0.0 and out[-1] == 999.0
        assert len(out) == 100

    def test_downsample_preserves_extremes_of_sawtooth(self):
        t = np.arange(1024.0)
        saw = np.abs((t % 128) - 64)
        out = downsample(saw, 256)
        assert out.max() >= 0.9 * saw.max()

    def test_align_pair_common_length(self):
        a, b = align_pair(np.arange(100.0), np.arange(37.0))
        assert len(a) == len(b) == 37

    def test_align_pair_empty_rejected(self):
        with pytest.raises(ValueError):
            align_pair(np.array([]), np.array([1.0]))

    def test_normalize_scale(self):
        assert np.array_equal(
            normalize_scale(np.array([1500.0, 3000.0]), 1500), [1.0, 2.0]
        )


class TestMetrics:
    def test_euclidean_identity(self):
        series = np.arange(50.0)
        assert euclidean_distance(series, series) == 0.0

    def test_euclidean_known_value(self):
        a = np.zeros(4)
        b = np.full(4, 2.0)
        assert euclidean_distance(a, b) == pytest.approx(2.0)

    def test_manhattan_known_value(self):
        a = np.zeros(4)
        b = np.array([1.0, -1.0, 3.0, -3.0])
        assert manhattan_distance(a, b) == pytest.approx(2.0)

    def test_correlation_scale_invariant(self):
        series = np.sin(np.linspace(0, 10, 80))
        assert correlation_distance(series, 5 * series) == pytest.approx(0.0)

    def test_correlation_anticorrelated(self):
        series = np.sin(np.linspace(0, 10, 80))
        assert correlation_distance(series, -series) == pytest.approx(2.0)

    def test_correlation_flat_series(self):
        flat = np.full(20, 3.0)
        wiggly = np.sin(np.linspace(0, 5, 20))
        assert correlation_distance(flat, flat) == 0.0
        assert correlation_distance(flat, wiggly) == 2.0

    def test_metric_registry(self):
        from repro.distance import DEFAULT_METRIC, METRICS, get_metric
        from repro.errors import ReproError

        assert DEFAULT_METRIC == "dtw"
        assert set(METRICS) == {
            "dtw",
            "euclidean",
            "manhattan",
            "correlation",
            "frechet",
            "lag",
        }
        assert get_metric("euclidean") is euclidean_distance
        with pytest.raises(ReproError):
            get_metric("hamming")
