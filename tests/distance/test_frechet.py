"""Discrete Fréchet and lag-distance tests."""

import numpy as np
import pytest

from repro.distance.frechet import frechet_distance, lag_distance


def _reference_frechet(a, b):
    """Textbook Eiter-Mannila recursion (memoized), to pin the DP."""
    import functools

    @functools.lru_cache(maxsize=None)
    def ca(i, j):
        d = abs(a[i] - b[j])
        if i == 0 and j == 0:
            return d
        if i == 0:
            return max(ca(0, j - 1), d)
        if j == 0:
            return max(ca(i - 1, 0), d)
        return max(min(ca(i - 1, j), ca(i - 1, j - 1), ca(i, j - 1)), d)

    return ca(len(a) - 1, len(b) - 1)


class TestFrechet:
    def test_identity(self):
        series = np.sin(np.linspace(0, 10, 50))
        assert frechet_distance(series, series) == 0.0

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        a, b = rng.random(30), rng.random(40)
        assert frechet_distance(a, b) == pytest.approx(
            frechet_distance(b, a)
        )

    def test_matches_reference(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            a = tuple(rng.normal(size=int(rng.integers(2, 15))))
            b = tuple(rng.normal(size=int(rng.integers(2, 15))))
            assert frechet_distance(np.array(a), np.array(b)) == pytest.approx(
                _reference_frechet(a, b)
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            frechet_distance(np.array([]), np.array([1.0]))

    def test_constant_offset(self):
        a = np.zeros(20)
        assert frechet_distance(a, a + 3.0) == pytest.approx(3.0)

    def test_bounded_below_by_endpoint_gap(self):
        a = np.array([0.0, 0.0, 0.0])
        b = np.array([0.0, 0.0, 5.0])
        assert frechet_distance(a, b) >= 5.0


class TestLag:
    def test_identity(self):
        series = np.sin(np.linspace(0, 10, 100))
        assert lag_distance(series, series) == 0.0

    def test_tolerates_small_shift(self):
        # A shifted ramp is non-periodic, so only true lag absorption
        # (not aliasing) can make the distance vanish.
        ramp = np.arange(200.0)
        assert lag_distance(ramp[10:110], ramp[0:100]) == pytest.approx(0.0)

    def test_large_shift_not_absorbed(self):
        ramp = np.arange(200.0)
        # Shift of 50 samples with a 20% (=20-sample) lag bound leaves a
        # residual offset of >= 30 units on a unit-slope ramp.
        assert lag_distance(ramp[50:150], ramp[0:100]) >= 30.0

    def test_symmetry(self):
        rng = np.random.default_rng(3)
        a, b = rng.random(60), rng.random(60)
        assert lag_distance(a, b) == pytest.approx(lag_distance(b, a))

    def test_scale_sensitive(self):
        series = np.sin(np.linspace(0, 10, 80)) + 2
        assert lag_distance(series, 3 * series) > lag_distance(series, series)
