"""Property-based tests on the distance metrics' algebraic structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.dtw import dtw_distance
from repro.distance.pointwise import euclidean_distance, manhattan_distance

_series = st.lists(
    st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
    min_size=3,
    max_size=50,
).map(np.array)

_positive = st.floats(min_value=0.1, max_value=50.0, allow_nan=False)
_offset = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)


@given(_series, _series, _offset)
@settings(max_examples=60, deadline=None)
def test_dtw_translation_invariance(a, b, c):
    """Shifting both series by a constant leaves DTW unchanged (its
    ground cost is |ai - bj|)."""
    assert dtw_distance(a + c, b + c) == pytest.approx(
        dtw_distance(a, b), rel=1e-9, abs=1e-9
    )


@given(_series, _series, _positive)
@settings(max_examples=60, deadline=None)
def test_dtw_positive_homogeneity(a, b, k):
    """Scaling both series scales DTW by the same factor — this is what
    makes normalizing cwnd by the MSS a pure unit change."""
    assert dtw_distance(k * a, k * b) == pytest.approx(
        k * dtw_distance(a, b), rel=1e-6, abs=1e-9
    )


@given(_series, _series)
@settings(max_examples=60, deadline=None)
def test_dtw_below_pointwise_when_aligned(a, b):
    """With equal lengths, the diagonal path is available, so normalized
    DTW never exceeds half the Manhattan (mean-L1) distance scaled by the
    path-length normalization."""
    if len(a) != len(b):
        return
    diagonal_cost = np.abs(a - b).sum() / (len(a) + len(b))
    assert dtw_distance(a, b) <= diagonal_cost + 1e-9


@given(_series, _positive)
@settings(max_examples=40, deadline=None)
def test_euclidean_homogeneity(a, k):
    b = a[::-1].copy()
    assert euclidean_distance(k * a, k * b) == pytest.approx(
        k * euclidean_distance(a, b), rel=1e-9, abs=1e-9
    )


@given(_series)
@settings(max_examples=40, deadline=None)
def test_manhattan_nonnegative_and_symmetric(a):
    b = np.roll(a, 1)
    d1 = manhattan_distance(a, b)
    d2 = manhattan_distance(b, a)
    assert d1 >= 0
    assert d1 == pytest.approx(d2)
