"""DTW distance tests: metric sanity and alignment behavior."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.dtw import dtw_distance, dtw_matrix


def test_identity_is_zero():
    series = np.sin(np.linspace(0, 10, 100))
    assert dtw_distance(series, series) == 0.0


def test_symmetry():
    rng = np.random.default_rng(0)
    a, b = rng.random(80), rng.random(80)
    assert dtw_distance(a, b) == pytest.approx(dtw_distance(b, a))


def test_nonnegative():
    rng = np.random.default_rng(1)
    assert dtw_distance(rng.random(50), rng.random(60)) >= 0.0


def test_empty_rejected():
    with pytest.raises(ValueError):
        dtw_matrix(np.array([]), np.array([1.0]))


def test_tolerates_temporal_shift_better_than_euclidean():
    """The §4.3 motivation: a time-shifted sawtooth is 'the same CCA'."""
    from repro.distance.pointwise import euclidean_distance

    t = np.linspace(0, 6 * np.pi, 400)
    base = np.abs(np.sin(t))  # sawtooth-ish pulses
    shifted = np.abs(np.sin(t + 0.4))
    dtw_penalty = dtw_distance(base, shifted) / dtw_distance(
        base, np.full_like(base, base.mean())
    )
    euclid_penalty = euclidean_distance(base, shifted) / euclidean_distance(
        base, np.full_like(base, base.mean())
    )
    assert dtw_penalty < euclid_penalty


def test_different_lengths_supported():
    a = np.sin(np.linspace(0, 10, 300))
    b = np.sin(np.linspace(0, 10, 120))
    assert dtw_distance(a, b) < 0.05


def test_band_fallback_when_too_narrow():
    # Extremely different lengths force the band fallback path.
    a = np.linspace(0, 1, 10)
    b = np.linspace(0, 1, 200)
    value = dtw_distance(a, b, band=0.01)
    assert np.isfinite(value)


def test_budget_downsamples():
    rng = np.random.default_rng(2)
    a, b = rng.random(5000), rng.random(5000)
    assert np.isfinite(dtw_distance(a, b, budget=64))


def test_scale_sensitivity():
    """Unlike correlation, DTW *does* see magnitude differences."""
    series = np.sin(np.linspace(0, 10, 100)) + 2
    assert dtw_distance(series, 3 * series) > dtw_distance(series, series)


@given(
    st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        min_size=2,
        max_size=60,
    ),
    st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        min_size=2,
        max_size=60,
    ),
)
@settings(max_examples=80, deadline=None)
def test_dtw_bounded_by_max_pointwise_gap(a, b):
    """Normalized DTW never exceeds the largest point-wise difference."""
    left, right = np.array(a), np.array(b)
    bound = max(abs(left.max() - right.min()), abs(right.max() - left.min()))
    assert dtw_distance(left, right) <= bound + 1e-9


@given(
    st.lists(
        st.floats(min_value=-50, max_value=50, allow_nan=False),
        min_size=2,
        max_size=40,
    )
)
@settings(max_examples=60, deadline=None)
def test_dtw_self_distance_zero(a):
    series = np.array(a)
    assert dtw_distance(series, series) == 0.0


def _reference_dtw(a, b, band=None):
    """Textbook O(nm) DP, used to pin the vectorized implementation."""
    n, m = len(a), len(b)
    width = max(n, m) if band is None else max(int(band * max(n, m)), 2)
    width = max(width, abs(n - m) + 1)
    inf = float("inf")
    cost = [[inf] * (m + 1) for _ in range(n + 1)]
    cost[0][0] = 0.0
    for i in range(1, n + 1):
        for j in range(max(1, i - width), min(m, i + width) + 1):
            step = abs(a[i - 1] - b[j - 1])
            cost[i][j] = step + min(
                cost[i - 1][j - 1], cost[i - 1][j], cost[i][j - 1]
            )
    return cost[n][m] / (n + m)


def test_vectorized_rows_match_reference_dp():
    rng = np.random.default_rng(7)
    for trial in range(40):
        n = int(rng.integers(2, 50))
        m = int(rng.integers(2, 50))
        a = rng.normal(size=n) * 10
        b = rng.normal(size=m) * 10
        band = None if trial % 3 == 0 else 0.3
        assert dtw_distance(a, b, band=band) == pytest.approx(
            _reference_dtw(a, b, band=band), abs=1e-9
        )


def test_dtw_matrix_scalar_matches_full_matrix_corner():
    rng = np.random.default_rng(11)
    for trial in range(30):
        n = int(rng.integers(2, 60))
        m = int(rng.integers(2, 60))
        a = rng.normal(size=n) * 10
        b = rng.normal(size=m) * 10
        band = None if trial % 3 == 0 else 0.25
        corner = dtw_matrix(a, b, band=band)
        full = dtw_matrix(a, b, band=band, return_matrix=True)
        assert isinstance(corner, float)
        assert corner == full[n, m]


def test_dtw_matrix_bounded_scalar_matches_full_matrix_corner():
    rng = np.random.default_rng(12)
    for _ in range(30):
        n = int(rng.integers(2, 60))
        m = int(rng.integers(2, 60))
        a = rng.normal(size=n) * 10
        b = rng.normal(size=m) * 10
        bound = float(rng.random() * 200)
        corner = dtw_matrix(a, b, bound=bound)
        full = dtw_matrix(a, b, bound=bound, return_matrix=True)
        assert corner == full[n, m]


def test_dtw_distance_batch_matches_scalar_bit_identically():
    from repro.distance.dtw import dtw_distance_batch

    rng = np.random.default_rng(13)
    for trial in range(40):
        lanes = int(rng.integers(1, 8))
        n = int(rng.integers(2, 50))
        m = int(rng.integers(2, 50))
        queries = rng.normal(size=(lanes, n)) * 10
        candidate = rng.normal(size=m) * 10
        band = None if trial % 4 == 0 else 0.2
        batch = dtw_distance_batch(queries, candidate, band=band)
        for lane in range(lanes):
            # budget larger than both sizes: downsample is the identity,
            # so the scalar kernel sees the very same floats.
            assert batch[lane] == dtw_distance(
                queries[lane], candidate, band=band, budget=1 << 30
            )


def test_dtw_distance_batch_bounded_matches_scalar_per_lane():
    from repro.distance.dtw import dtw_distance_batch

    rng = np.random.default_rng(14)
    for _ in range(40):
        lanes = int(rng.integers(1, 8))
        n = int(rng.integers(2, 50))
        m = int(rng.integers(2, 50))
        queries = rng.normal(size=(lanes, n)) * 10
        candidate = rng.normal(size=m) * 10
        bounds = np.where(
            rng.random(lanes) < 0.3, np.inf, rng.random(lanes) * 6
        )
        batch = dtw_distance_batch(queries, candidate, bounds=bounds)
        for lane in range(lanes):
            bound = None if not np.isfinite(bounds[lane]) else bounds[lane]
            scalar = dtw_distance(
                queries[lane], candidate, budget=1 << 30, bound=bound
            )
            assert batch[lane] == scalar


def test_dtw_distance_batch_abandons_hopeless_lanes_only():
    from repro.distance.dtw import dtw_distance_batch

    queries = np.stack([np.zeros(32), np.full(32, 100.0)])
    candidate = np.full(32, 100.0)
    bounds = np.array([1e-6, 1e-6])
    batch = dtw_distance_batch(queries, candidate, bounds=bounds)
    assert batch[0] == float("inf")  # hopeless lane abandoned
    assert batch[1] == 0.0  # identical lane survives its tight bound


def test_dtw_distance_batch_rejects_bad_shapes():
    from repro.distance.dtw import dtw_distance_batch

    with pytest.raises(ValueError):
        dtw_distance_batch(np.zeros(5), np.ones(3))
    with pytest.raises(ValueError):
        dtw_distance_batch(np.zeros((2, 0)), np.ones(3))
    assert dtw_distance_batch(np.empty((0, 4)), np.ones(3)).size == 0
