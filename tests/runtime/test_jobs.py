"""Job queue ordering and the anytime-answer result store."""

import json
import math

from repro.runtime.jobs import Job, JobQueue, JobState, ResultStore


def _job(job_id, priority=0):
    return Job(job_id=job_id, source=lambda: iter(()), priority=priority)


# -------------------------------------------------------------------- queue


def test_queue_orders_by_priority_then_fifo():
    queue = JobQueue()
    queue.push(_job("low", priority=0))
    queue.push(_job("high", priority=5))
    queue.push(_job("mid", priority=2))
    queue.push(_job("high2", priority=5))
    order = [queue.pop().job_id for _ in range(4)]
    assert order == ["high", "high2", "mid", "low"]


def test_queue_len_and_truthiness():
    queue = JobQueue()
    assert not queue and len(queue) == 0
    queue.push(_job("a"))
    assert queue and len(queue) == 1
    queue.pop()
    assert not queue


# ----------------------------------------------------------------- snapshot


def test_snapshot_maps_infinite_distance_to_none():
    job = _job("fresh")
    snap = job.snapshot()
    assert snap["best_distance"] is None
    assert snap["state"] == "pending"
    job.best_distance = 1.25
    job.state = JobState.COMPLETED
    snap = job.snapshot()
    assert snap["best_distance"] == 1.25
    assert snap["state"] == "completed"
    assert math.isinf(job.best_distance) is False


# -------------------------------------------------------------------- store


def test_store_latest_returns_newest_snapshot(tmp_path):
    store = ResultStore(str(tmp_path))
    job = _job("alpha")
    store.update(job)
    job.state = JobState.RUNNING
    job.best_distance = 3.0
    store.update(job)
    latest = store.latest("alpha")
    assert latest["state"] == "running"
    assert latest["best_distance"] == 3.0


def test_store_latest_skips_torn_tail(tmp_path):
    store = ResultStore(str(tmp_path))
    job = _job("beta")
    job.best_distance = 2.0
    store.update(job)
    with open(store._path("beta"), "a", encoding="utf-8") as handle:
        handle.write('{"job_id": "beta", "state": "runn')  # kill mid-write
    latest = store.latest("beta")
    assert latest["best_distance"] == 2.0


def test_store_missing_job_is_none(tmp_path):
    store = ResultStore(str(tmp_path))
    assert store.latest("nope") is None


def test_store_all_latest_covers_every_job(tmp_path):
    store = ResultStore(str(tmp_path))
    for name in ("a", "b"):
        store.update(_job(name))
    snapshots = store.all_latest()
    assert sorted(snapshots) == ["a", "b"]
    assert all(snap["state"] == "pending" for snap in snapshots.values())


def test_store_lines_are_complete_json_documents(tmp_path):
    store = ResultStore(str(tmp_path))
    job = _job("gamma")
    store.update(job)
    job.iterations_done = 1
    store.update(job)
    with open(store._path("gamma"), "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    assert len(lines) == 2
    assert [json.loads(line)["iterations_done"] for line in lines] == [0, 1]
