"""RunContext and sink behavior: timing, fan-out, JSONL format."""

import io
import json

from repro.runtime.context import RunContext
from repro.runtime.events import (
    BudgetExceeded,
    CacheStats,
    IterationFinished,
    PoolSpawned,
    RunFinished,
    RunStarted,
)
from repro.runtime.sinks import CollectorSink, ConsoleProgressSink, JsonlSink

STARTED = RunStarted(
    run="synthesis",
    dsl_name="reno-4",
    bucket_count=64,
    segment_count=4,
    workers=2,
)
ITERATION = IterationFinished(
    index=1,
    samples_per_bucket=8,
    segment_count=2,
    bucket_count=64,
    kept=5,
    best_distance=3.0,
    handlers_scored=100,
    elapsed_seconds=0.5,
)
FINISHED = RunFinished(
    run="synthesis",
    best_distance=3.0,
    expression="cwnd + mss",
    handlers_scored=100,
    elapsed_seconds=1.0,
    phase_seconds={"refinement": 1.0},
)


def test_collector_preserves_order_and_timestamps():
    collector = CollectorSink()
    ctx = RunContext([collector])
    ctx.emit(STARTED)
    ctx.emit(ITERATION)
    ctx.emit(FINISHED)
    assert [event.kind for event in collector] == [
        "run_started",
        "iteration_finished",
        "run_finished",
    ]
    times = [t for t, _ in collector.timeline]
    assert times == sorted(times)
    assert collector.last_of_kind("run_finished") is FINISHED
    assert collector.last_of_kind("cache_stats") is None
    assert len(collector) == 3


def test_no_sink_context_counts_but_stores_nothing():
    ctx = RunContext()
    ctx.emit(STARTED)
    assert ctx.events_emitted == 1


def test_timer_accumulates_across_reentry():
    ticks = iter([0.0, 0.0, 1.0, 5.0, 7.0])
    ctx = RunContext(clock=lambda: next(ticks))
    with ctx.timer("phase"):
        pass  # 0.0 -> 1.0
    with ctx.timer("phase"):
        pass  # 5.0 -> 7.0
    assert ctx.phase_seconds == {"phase": 3.0}


def test_jsonl_sink_writes_one_parseable_object_per_line(tmp_path):
    path = tmp_path / "run.jsonl"
    with RunContext([JsonlSink(str(path))]) as ctx:
        ctx.emit(STARTED)
        ctx.emit(ITERATION)
        ctx.emit(FINISHED)
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 3
    parsed = [json.loads(line) for line in lines]
    assert [p["event"] for p in parsed] == [
        "run_started",
        "iteration_finished",
        "run_finished",
    ]
    assert all("t" in p for p in parsed)
    assert parsed[0]["workers"] == 2


def test_jsonl_sink_without_events_creates_no_file(tmp_path):
    path = tmp_path / "never.jsonl"
    sink = JsonlSink(str(path))
    sink.close()
    assert not path.exists()


def test_console_sink_mentions_the_essentials():
    stream = io.StringIO()
    sink = ConsoleProgressSink(stream)
    ctx = RunContext([sink])
    ctx.emit(STARTED)
    ctx.emit(PoolSpawned(workers=2))
    ctx.emit(CacheStats(hits=5, misses=5, entries=5))
    ctx.emit(ITERATION)
    ctx.emit(
        BudgetExceeded(phase="refinement", budget_seconds=1.0,
                       elapsed_seconds=1.2)
    )
    ctx.emit(FINISHED)
    out = stream.getvalue()
    assert "run started" in out
    assert "pool spawned" in out
    assert "iter 1" in out
    assert "cache 50% hit" in out
    assert "budget" in out
    assert "cwnd + mss" in out
    # cache stats fold into the iteration line, not their own line
    assert len(out.strip().splitlines()) == 5
