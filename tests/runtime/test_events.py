"""Event schema tests: payloads must stay JSON-serializable and stable."""

import json

from repro.runtime.events import (
    BucketScored,
    BudgetExceeded,
    CacheStats,
    IterationFinished,
    PoolSpawned,
    RunFinished,
    RunStarted,
    ScoringStats,
    SegmentsPrimed,
    SketchesDrawn,
    WaveDispatched,
    bucket_label,
    event_payload,
)

ALL_EVENTS = [
    RunStarted(
        run="synthesis",
        dsl_name="reno-4",
        bucket_count=64,
        segment_count=6,
        workers=1,
    ),
    PoolSpawned(workers=4),
    SegmentsPrimed(epoch=0, segment_count=2),
    SketchesDrawn(target=16, generated=120, live_buckets=64),
    BucketScored(iteration=1, bucket="+add+mul", score=3.5, sketches=6),
    WaveDispatched(groups=5, tasks=40, workers=4),
    ScoringStats(
        batched_waves=12,
        lb_pruned=200,
        dp_abandoned=40,
        candidates_pruned=9,
        warm_start_pruned=17,
        fused_waves=2,
        fused_tasks=40,
        peak_in_flight=8,
        mean_occupancy=0.8,
    ),
    IterationFinished(
        index=1,
        samples_per_bucket=16,
        segment_count=2,
        bucket_count=64,
        kept=5,
        best_distance=2.25,
        handlers_scored=800,
        elapsed_seconds=1.5,
    ),
    CacheStats(hits=10, misses=30, entries=30),
    BudgetExceeded(
        phase="refinement", budget_seconds=5.0, elapsed_seconds=5.2
    ),
    RunFinished(
        run="synthesis",
        best_distance=2.25,
        expression="cwnd + mss",
        handlers_scored=1200,
        elapsed_seconds=9.0,
        phase_seconds={"refinement": 8.0, "exhaustive": 1.0},
    ),
]


def test_every_event_payload_is_json_round_trippable():
    for event in ALL_EVENTS:
        payload = event_payload(event)
        assert payload["event"] == event.kind
        restored = json.loads(json.dumps(payload))
        assert restored["event"] == event.kind


def test_kinds_are_unique():
    kinds = [event.kind for event in ALL_EVENTS]
    assert len(kinds) == len(set(kinds))


def test_bucket_label_sorts_and_joins():
    assert bucket_label(frozenset({"mul", "add"})) == "add+mul"
    assert bucket_label(frozenset()) == "(empty)"
    assert bucket_label("already-a-label") == "already-a-label"


def test_cache_stats_rates():
    stats = CacheStats(hits=3, misses=1, entries=1)
    assert stats.lookups == 4
    assert stats.hit_rate == 0.75
    empty = CacheStats(hits=0, misses=0, entries=0)
    assert empty.hit_rate == 0.0


def test_frozenset_payloads_become_sorted_lists():
    payload = event_payload(
        RunFinished(
            run="synthesis",
            best_distance=1.0,
            expression="cwnd",
            handlers_scored=1,
            elapsed_seconds=0.1,
            phase_seconds={"a": 1.0},
        )
    )
    assert payload["phase_seconds"] == {"a": 1.0}
    assert event_payload(CacheStats(hits=1, misses=1, entries=1))[
        "hit_rate"
    ] == 0.5
