"""Checkpoint persistence tests: round-trips, atomicity, corrupt tails."""

import json
import os

from repro.runtime.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointWriter,
    RefinementCheckpoint,
    checkpoint_from_payload,
    checkpoint_payload,
    load_checkpoint,
)
from repro.runtime.supervise import Quarantined
from repro.synth.result import IterationRecord


def _checkpoint(iteration=1, best="cwnd + mss", distance=1.5):
    record = IterationRecord(
        index=iteration,
        samples_per_bucket=6,
        segment_count=2,
        ranking=(
            (frozenset({"reno_inc"}), 0.5),
            (frozenset({"mss", "cwnd"}), 1.5),
        ),
        kept=(frozenset({"reno_inc"}),),
        handlers_scored=40 * iteration,
    )
    return RefinementCheckpoint(
        fingerprint={"dsl": "reno", "seed": 0, "metric": "dtw"},
        records=(record,) * iteration,
        best_expression=best,
        best_distance=distance,
        handlers_scored=40 * iteration,
        loop_done=False,
        next_samples=48,
        next_keep=2,
        next_segment_count=4,
        quarantined=(Quarantined("c0 * mss", "timeout", "0.1s watchdog"),),
    )


def test_payload_round_trip():
    original = _checkpoint()
    payload = json.loads(json.dumps(checkpoint_payload(original)))
    assert checkpoint_from_payload(payload) == original


def test_payload_round_trips_infinite_distance():
    original = _checkpoint(best=None, distance=float("inf"))
    payload = json.loads(json.dumps(checkpoint_payload(original)))
    restored = checkpoint_from_payload(payload)
    assert restored.best_expression is None
    assert restored.best_distance == float("inf")


def test_writer_then_loader(tmp_path):
    path = str(tmp_path / "run.ckpt.jsonl")
    writer = CheckpointWriter(path)
    writer.write(_checkpoint(iteration=1))
    writer.write(_checkpoint(iteration=2))
    loaded = load_checkpoint(path)
    assert loaded == _checkpoint(iteration=2)  # newest line wins
    with open(path, encoding="utf-8") as handle:
        assert len(handle.readlines()) == 2


def test_writer_extends_existing_file(tmp_path):
    path = str(tmp_path / "run.ckpt.jsonl")
    CheckpointWriter(path).write(_checkpoint(iteration=1))
    # A restarted run pointing --checkpoint at the same file keeps one
    # continuous history.
    CheckpointWriter(path).write(_checkpoint(iteration=2))
    with open(path, encoding="utf-8") as handle:
        assert len(handle.readlines()) == 2
    assert load_checkpoint(path) == _checkpoint(iteration=2)


def test_write_leaves_no_temp_file(tmp_path):
    path = str(tmp_path / "run.ckpt.jsonl")
    CheckpointWriter(path).write(_checkpoint())
    assert os.listdir(tmp_path) == ["run.ckpt.jsonl"]


def test_corrupt_tail_falls_back_to_previous_line(tmp_path):
    path = str(tmp_path / "run.ckpt.jsonl")
    CheckpointWriter(path).write(_checkpoint(iteration=1))
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"version": 1, "truncated mid-wri')
    assert load_checkpoint(path) == _checkpoint(iteration=1)


def test_unknown_version_lines_skipped(tmp_path):
    path = str(tmp_path / "run.ckpt.jsonl")
    writer = CheckpointWriter(path)
    writer.write(_checkpoint(iteration=1))
    future = checkpoint_payload(_checkpoint(iteration=2))
    future["version"] = CHECKPOINT_VERSION + 1
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(future) + "\n")
    assert load_checkpoint(path) == _checkpoint(iteration=1)


def test_missing_or_empty_file(tmp_path):
    assert load_checkpoint(str(tmp_path / "absent.jsonl")) is None
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert load_checkpoint(str(empty)) is None
