"""Checkpoint leases: expiring exclusive ownership with an injected clock."""

import json
import os

from repro.runtime.checkpoint import (
    DEFAULT_LEASE_TTL,
    CheckpointLease,
    lease_path,
    read_lease,
)


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _lease(tmp_path, owner, clock, ttl=10.0):
    return CheckpointLease(
        str(tmp_path / "job.jsonl"), owner, ttl, clock=clock
    )


def test_acquire_on_absent_lease(tmp_path):
    clock = FakeClock()
    lease = _lease(tmp_path, "a", clock)
    assert lease.acquire()
    assert lease.held
    assert lease.displaced is None
    state = read_lease(lease.path)
    assert state.owner == "a"
    assert state.ttl_seconds == 10.0
    assert not state.expired(clock())


def test_fresh_foreign_lease_blocks_without_steal(tmp_path):
    clock = FakeClock()
    assert _lease(tmp_path, "a", clock).acquire()
    other = _lease(tmp_path, "b", clock)
    assert not other.acquire()
    assert not other.held
    assert read_lease(other.path).owner == "a"  # untouched


def test_steal_displaces_fresh_owner(tmp_path):
    clock = FakeClock()
    assert _lease(tmp_path, "a", clock).acquire()
    thief = _lease(tmp_path, "b", clock)
    assert thief.acquire(steal=True)
    assert thief.displaced == "a"
    assert read_lease(thief.path).owner == "b"


def test_expired_lease_acquirable_without_steal(tmp_path):
    clock = FakeClock()
    assert _lease(tmp_path, "a", clock, ttl=10.0).acquire()
    clock.advance(10.0)  # boundary counts as expired
    successor = _lease(tmp_path, "b", clock, ttl=10.0)
    assert successor.acquire()
    assert successor.displaced == "a"


def test_renew_extends_the_ttl_window(tmp_path):
    clock = FakeClock()
    holder = _lease(tmp_path, "a", clock, ttl=10.0)
    assert holder.acquire()
    clock.advance(8.0)
    holder.renew()
    clock.advance(8.0)  # 16s since acquire, 8s since renew
    contender = _lease(tmp_path, "b", clock, ttl=10.0)
    assert not contender.acquire()
    state = read_lease(holder.path)
    assert state.renewed_at > state.acquired_at


def test_renew_without_hold_is_noop(tmp_path):
    clock = FakeClock()
    lease = _lease(tmp_path, "a", clock)
    lease.renew()
    assert read_lease(lease.path) is None


def test_reacquire_own_lease_is_not_a_steal(tmp_path):
    clock = FakeClock()
    lease = _lease(tmp_path, "a", clock)
    assert lease.acquire()
    again = _lease(tmp_path, "a", clock)
    assert again.acquire()
    assert again.displaced is None


def test_release_removes_file_and_is_idempotent(tmp_path):
    clock = FakeClock()
    lease = _lease(tmp_path, "a", clock)
    assert lease.acquire()
    lease.release()
    assert not lease.held
    assert not os.path.exists(lease.path)
    lease.release()  # second release: no error
    os.makedirs(tmp_path / "gone", exist_ok=True)


def test_release_survives_missing_file(tmp_path):
    clock = FakeClock()
    lease = _lease(tmp_path, "a", clock)
    assert lease.acquire()
    os.remove(lease.path)
    lease.release()
    assert not lease.held


def test_corrupt_lease_reads_as_absent(tmp_path):
    clock = FakeClock()
    path = lease_path(str(tmp_path / "job.jsonl"))
    with open(path, "w", encoding="utf-8") as handle:
        handle.write('{"owner": ')  # torn write
    assert read_lease(path) is None
    lease = _lease(tmp_path, "b", clock)
    assert lease.acquire()  # crashed writer's garbage never blocks


def test_lease_file_is_json_with_expected_fields(tmp_path):
    clock = FakeClock()
    lease = _lease(tmp_path, "a", clock)
    assert lease.acquire()
    with open(lease.path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    assert set(payload) == {
        "owner",
        "acquired_at",
        "renewed_at",
        "ttl_seconds",
    }


def test_default_ttl_applies(tmp_path):
    lease = CheckpointLease(str(tmp_path / "c.jsonl"), "a")
    assert lease.ttl_seconds == DEFAULT_LEASE_TTL
