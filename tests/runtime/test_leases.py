"""Checkpoint leases: expiring exclusive ownership with an injected clock."""

import json

import pytest
import os

from repro.runtime.checkpoint import (
    DEFAULT_LEASE_TTL,
    CheckpointLease,
    lease_path,
    read_lease,
)


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _lease(tmp_path, owner, clock, ttl=10.0):
    return CheckpointLease(
        str(tmp_path / "job.jsonl"), owner, ttl, clock=clock
    )


def test_acquire_on_absent_lease(tmp_path):
    clock = FakeClock()
    lease = _lease(tmp_path, "a", clock)
    assert lease.acquire()
    assert lease.held
    assert lease.displaced is None
    state = read_lease(lease.path)
    assert state.owner == "a"
    assert state.ttl_seconds == 10.0
    assert not state.expired(clock())


def test_fresh_foreign_lease_blocks_without_steal(tmp_path):
    clock = FakeClock()
    assert _lease(tmp_path, "a", clock).acquire()
    other = _lease(tmp_path, "b", clock)
    assert not other.acquire()
    assert not other.held
    assert read_lease(other.path).owner == "a"  # untouched


def test_steal_displaces_fresh_owner(tmp_path):
    clock = FakeClock()
    assert _lease(tmp_path, "a", clock).acquire()
    thief = _lease(tmp_path, "b", clock)
    assert thief.acquire(steal=True)
    assert thief.displaced == "a"
    assert read_lease(thief.path).owner == "b"


def test_expired_lease_acquirable_without_steal(tmp_path):
    clock = FakeClock()
    assert _lease(tmp_path, "a", clock, ttl=10.0).acquire()
    clock.advance(10.0)  # boundary counts as expired
    successor = _lease(tmp_path, "b", clock, ttl=10.0)
    assert successor.acquire()
    assert successor.displaced == "a"


def test_renew_extends_the_ttl_window(tmp_path):
    clock = FakeClock()
    holder = _lease(tmp_path, "a", clock, ttl=10.0)
    assert holder.acquire()
    clock.advance(8.0)
    holder.renew()
    clock.advance(8.0)  # 16s since acquire, 8s since renew
    contender = _lease(tmp_path, "b", clock, ttl=10.0)
    assert not contender.acquire()
    state = read_lease(holder.path)
    assert state.renewed_at > state.acquired_at


def test_renew_without_hold_is_noop(tmp_path):
    clock = FakeClock()
    lease = _lease(tmp_path, "a", clock)
    lease.renew()
    assert read_lease(lease.path) is None


def test_reacquire_own_lease_is_not_a_steal(tmp_path):
    clock = FakeClock()
    lease = _lease(tmp_path, "a", clock)
    assert lease.acquire()
    again = _lease(tmp_path, "a", clock)
    assert again.acquire()
    assert again.displaced is None


def test_release_removes_file_and_is_idempotent(tmp_path):
    clock = FakeClock()
    lease = _lease(tmp_path, "a", clock)
    assert lease.acquire()
    lease.release()
    assert not lease.held
    assert not os.path.exists(lease.path)
    lease.release()  # second release: no error
    os.makedirs(tmp_path / "gone", exist_ok=True)


def test_release_survives_missing_file(tmp_path):
    clock = FakeClock()
    lease = _lease(tmp_path, "a", clock)
    assert lease.acquire()
    os.remove(lease.path)
    lease.release()
    assert not lease.held


def test_corrupt_lease_reads_as_absent(tmp_path):
    clock = FakeClock()
    path = lease_path(str(tmp_path / "job.jsonl"))
    with open(path, "w", encoding="utf-8") as handle:
        handle.write('{"owner": ')  # torn write
    assert read_lease(path) is None
    lease = _lease(tmp_path, "b", clock)
    assert lease.acquire()  # crashed writer's garbage never blocks


def test_lease_file_is_json_with_expected_fields(tmp_path):
    clock = FakeClock()
    lease = _lease(tmp_path, "a", clock)
    assert lease.acquire()
    with open(lease.path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    assert set(payload) == {
        "owner",
        "acquired_at",
        "renewed_at",
        "ttl_seconds",
    }


def test_default_ttl_applies(tmp_path):
    lease = CheckpointLease(str(tmp_path / "c.jsonl"), "a")
    assert lease.ttl_seconds == DEFAULT_LEASE_TTL


# ----------------------------------------------------- takeover jitter


def test_takeover_delay_deterministic_and_bounded():
    from repro.runtime.checkpoint import (
        DEFAULT_TAKEOVER_JITTER_FRACTION,
        takeover_delay,
    )

    first = takeover_delay("server-a", "job-1", 30.0)
    assert first == takeover_delay("server-a", "job-1", 30.0)
    assert 0.0 <= first <= 30.0 * DEFAULT_TAKEOVER_JITTER_FRACTION


def test_takeover_delay_spreads_servers_and_jobs():
    from repro.runtime.checkpoint import takeover_delay

    delays = {
        takeover_delay(server, job, 30.0)
        for server in ("a", "b", "c", "d")
        for job in ("one", "two")
    }
    # A stable hash should elect different first responders; eight
    # (server, job) pairs collapsing to one delay would defeat it.
    assert len(delays) == 8


def test_takeover_delay_scales_with_ttl():
    from repro.runtime.checkpoint import takeover_delay

    assert takeover_delay("a", "j", 60.0) == pytest.approx(
        2.0 * takeover_delay("a", "j", 30.0)
    )


def test_takeover_delay_custom_fraction_zero():
    from repro.runtime.checkpoint import takeover_delay

    assert takeover_delay("a", "j", 30.0, max_fraction=0.0) == 0.0


# ----------------------------------------------------- the claim lock


def test_held_claim_lock_blocks_acquire(tmp_path):
    clock = FakeClock()
    lease = _lease(tmp_path, "b", clock)
    with open(f"{lease.path}.lock", "w", encoding="utf-8"):
        pass  # a concurrent claimant is mid-critical-section
    assert not lease.acquire()
    assert not lease.held
    assert read_lease(lease.path) is None  # nothing was written


def test_stale_claim_lock_is_reaped_then_acquirable(tmp_path):
    clock = FakeClock()
    lease = _lease(tmp_path, "b", clock)
    lock = f"{lease.path}.lock"
    with open(lock, "w", encoding="utf-8"):
        pass
    ancient = os.path.getmtime(lock) - 3600.0
    os.utime(lock, (ancient, ancient))  # holder crashed long ago
    assert not lease.acquire()  # this pass reaps the wreckage...
    assert not os.path.exists(lock)
    assert lease.acquire()  # ...and the next one wins
    assert lease.held


def test_acquire_removes_its_own_lock(tmp_path):
    clock = FakeClock()
    lease = _lease(tmp_path, "a", clock)
    assert lease.acquire()
    assert not os.path.exists(f"{lease.path}.lock")
    loser = _lease(tmp_path, "b", clock)
    assert not loser.acquire()  # fresh foreign lease, not a stuck lock
    assert not os.path.exists(f"{lease.path}.lock")


def test_racing_claimants_one_winner(tmp_path):
    """Two servers racing the same expired lease: exactly one wins."""
    clock = FakeClock()
    dead = _lease(tmp_path, "dead", clock, ttl=5.0)
    assert dead.acquire()
    clock.advance(10.0)
    a = _lease(tmp_path, "a", clock, ttl=5.0)
    b = _lease(tmp_path, "b", clock, ttl=5.0)
    winners = [lease for lease in (a, b) if lease.acquire()]
    assert len(winners) == 1
    # The loser saw the winner's *fresh* lease and backed off.
    assert read_lease(a.path).owner == winners[0].owner


def test_release_leaves_stolen_lease_alone(tmp_path):
    clock = FakeClock()
    victim = _lease(tmp_path, "victim", clock)
    assert victim.acquire()
    thief = _lease(tmp_path, "thief", clock)
    assert thief.acquire(steal=True)
    victim.release()  # drain racing a steal must not free the thief's claim
    state = read_lease(victim.path)
    assert state is not None and state.owner == "thief"
