"""Shared-memory segment plane suite (``repro.runtime.shm``).

The plane is pure transport: scores, rankings, and checkpoints must be
bit-identical with it on or off, at one worker and at four, with the
batched DTW kernel on or off.  Around that differential core sit the
lifecycle guarantees — crash-mid-wave pool rebuilds re-attach the same
plane, co-scheduled jobs get isolated planes, and no ``/dev/shm``
segment survives an executor close or a fleet drain.
"""

import os
from dataclasses import replace
from types import SimpleNamespace

import numpy as np
import pytest

from repro.dsl import RENO_DSL, with_budget
from repro.dsl.parser import parse
from repro.runtime.context import RunContext
from repro.runtime.executors import PooledExecutor, make_executor
from repro.runtime.faults import FaultPlan
from repro.runtime.shm import (
    PLANE_NAME_PREFIX,
    SegmentPlane,
    attach_plane,
    plane_segments,
)
from repro.runtime.sinks import CollectorSink
from repro.service import FleetServer, submit_job
from repro.synth.refinement import SynthesisConfig, synthesize
from repro.synth.scoring import Scorer
from repro.synth.sketch import Sketch
from repro.trace.io import save_traces

SHM_DIR = "/dev/shm"

SKETCH_TEXTS = [
    "cwnd + c0 * reno_inc",
    "cwnd + reno_inc",
    "c0 * mss",
    "cwnd + mss",
    "(c0 < c1) ? cwnd + mss : cwnd",
]

TINY = with_budget(RENO_DSL, max_depth=3, max_nodes=4)

FAST = SynthesisConfig(
    initial_samples=6,
    initial_keep=3,
    completion_cap=8,
    max_iterations=2,
    exhaustive_cap=120,
)


@pytest.fixture(scope="module")
def sketches():
    return [Sketch.from_expr(parse(text)) for text in SKETCH_TEXTS]


def _scorer(**kwargs):
    return Scorer(constant_pool=(0.5, 1.0), completion_cap=8, **kwargs)


def _live_planes():
    if not os.path.isdir(SHM_DIR):  # pragma: no cover - exotic platform
        pytest.skip("no /dev/shm to inspect")
    return sorted(
        name
        for name in os.listdir(SHM_DIR)
        if name.startswith(PLANE_NAME_PREFIX)
    )


# ---------------------------------------------------------------- roundtrip


def test_plane_roundtrip_preserves_every_array(reno_segments):
    scorer = _scorer()
    entries = scorer.prepare_segments(reno_segments[:3])
    plane = SegmentPlane.build(entries)
    assert plane is not None
    assert plane.name in _live_planes()
    shm = attach_plane(plane.handle)
    try:
        rebuilt = plane_segments(shm, plane.handle)
        assert len(rebuilt) == len(entries)
        for entry, segment in zip(entries, rebuilt):
            table, observed, downsampled, envelope = segment.plane_entry()
            assert table.mss == entry.table.mss
            assert set(table.columns) == set(entry.table.columns)
            for name, column in entry.table.columns.items():
                assert np.array_equal(table.columns[name], column)
            assert np.array_equal(observed, entry.observed)
            assert np.array_equal(downsampled, entry.downsampled)
            assert entry.envelope_cache is not None, "dtw precomputes"
            assert envelope is not None
            assert np.array_equal(envelope[0], entry.envelope_cache[0])
            assert np.array_equal(envelope[1], entry.envelope_cache[1])
            # Views are read-only: a worker can never corrupt the plane.
            with pytest.raises(ValueError):
                observed[0] = 0.0
    finally:
        shm.close()
        plane.close()
    assert plane.name not in _live_planes()
    plane.close()  # idempotent


def test_plane_build_rejects_unpackable_inputs(reno_segments):
    before = _live_planes()
    assert SegmentPlane.build([]) is None
    entry = _scorer().prepare_segments(reno_segments[:1])[0]
    empty_series = SimpleNamespace(
        table=entry.table,
        observed=np.empty(0),
        downsampled=entry.downsampled,
        envelope_cache=None,
    )
    assert SegmentPlane.build([empty_series]) is None
    assert _live_planes() == before, "failed builds must not leak blocks"


# ------------------------------------------------------------- bit-identity


@pytest.mark.parametrize("workers", [1, 4])
@pytest.mark.parametrize("use_shm", [True, False])
@pytest.mark.parametrize("batch_dtw", [True, False])
def test_wave_bit_identity_across_transport_and_kernel(
    sketches, reno_segments, workers, use_shm, batch_dtw
):
    """Every (transport, kernel, workers) combination returns the exact
    floats of the scalar pickled serial reference — not approximately."""
    working = reno_segments[:2]
    reference = make_executor(
        _scorer(batch_dtw=False), 1, use_shm=False
    ).score(sketches, working)
    executor = make_executor(
        _scorer(batch_dtw=batch_dtw), workers, use_shm=use_shm
    )
    try:
        results = executor.score(sketches, working)
    finally:
        executor.close()
    assert [r.distance for r in results] == [
        r.distance for r in reference
    ]
    assert [r.handler for r in results] == [r.handler for r in reference]
    assert _live_planes() == []


@pytest.mark.parametrize(
    "workers,shm_plane,batch_dtw",
    [(4, True, True), (4, False, True), (1, True, False)],
)
def test_synthesis_checkpoints_byte_identical(
    reno_segments, tmp_path, workers, shm_plane, batch_dtw
):
    """Full refinement runs checkpoint byte-identically whatever the
    transport/kernel/worker knobs — the resume contract behind
    excluding them from the run fingerprint."""
    segments = reno_segments[:4]
    baseline_path = tmp_path / "baseline.jsonl"
    variant_path = tmp_path / "variant.jsonl"
    baseline = synthesize(
        segments,
        TINY,
        replace(
            FAST,
            workers=1,
            shm_plane=False,
            batch_dtw=False,
            checkpoint_path=str(baseline_path),
        ),
    )
    variant = synthesize(
        segments,
        TINY,
        replace(
            FAST,
            workers=workers,
            shm_plane=shm_plane,
            batch_dtw=batch_dtw,
            checkpoint_path=str(variant_path),
        ),
    )
    assert variant.best.handler == baseline.best.handler
    assert variant.best.distance == baseline.best.distance
    assert tuple(variant.iterations) == tuple(baseline.iterations)
    assert variant.total_handlers_scored == baseline.total_handlers_scored
    assert variant_path.read_bytes() == baseline_path.read_bytes()
    assert _live_planes() == []


# ------------------------------------------------------- crash re-attach


def test_crash_mid_wave_rebuild_reattaches_plane(sketches, reno_segments):
    """A transient worker crash rebuilds the pool; the fresh workers
    re-attach the *cached* plane (no new block) and finish with the
    fault-free distances."""
    working = reno_segments[:2]
    with PooledExecutor(_scorer(), 2) as clean:
        expected = clean.score(sketches, working)
    collector = CollectorSink()
    plan = FaultPlan.make(crash_on=[sketches[2]], crash_generations=[1])
    with PooledExecutor(
        _scorer(), 2, context=RunContext([collector]), fault_plan=plan
    ) as pooled:
        results = pooled.score(sketches, working)
        assert len(pooled._planes) == 1, "rebuild reuses the cached plane"
        (plane,) = pooled._planes.values()
        # Both the original broadcast and the rebuild's re-broadcast
        # travelled through the plane handle, never the pickled path.
        assert pooled.broadcast_bytes_saved >= 2 * plane.nbytes
    assert len(collector.of_kind("worker_crashed")) == 1
    assert len(collector.of_kind("pool_rebuilt")) == 1
    assert [r.distance for r in results] == [
        r.distance for r in expected
    ]
    assert _live_planes() == []


# ------------------------------------------------------- fleet isolation


def test_coscheduled_working_sets_get_isolated_planes(
    sketches, reno_segments
):
    """Two jobs multiplexed over one executor (the scheduler's shape)
    each get their own plane — distinct names, both live while the pool
    serves them, all unlinked on close."""
    job_a = reno_segments[:2]
    job_b = reno_segments[2:4]
    with PooledExecutor(_scorer(), 2) as pooled:
        first = pooled.score(sketches, job_a)
        second = pooled.score(sketches, job_b)
        assert len(first) == len(second) == len(sketches)
        assert len(pooled._planes) == 2
        names = [plane.name for plane in pooled._planes.values()]
        assert len(set(names)) == 2
        live = _live_planes()
        for name in names:
            assert name in live
    assert _live_planes() == []


# ------------------------------------------------------------ leak checks


def test_drained_server_leaves_no_planes(reno_trace, tmp_path):
    """A graceful drain (the SIGTERM handler's path) tears the shared
    executor down plane-free, exactly like a normal completion."""
    archive = tmp_path / "reno.json"
    save_traces([reno_trace], str(archive))
    spool = str(tmp_path / "spool")
    submit_job(
        spool,
        "job",
        traces=str(archive),
        dsl="reno",
        max_depth=3,
        max_nodes=4,
        config={
            "initial_samples": 4,
            "initial_keep": 3,
            "completion_cap": 8,
            "max_iterations": 2,
            "exhaustive_cap": 120,
        },
    )
    calls = {"n": 0}

    def drain_after_one_slice():
        calls["n"] += 1
        return calls["n"] > 2

    sink = CollectorSink()
    server = FleetServer(
        spool,
        server_id="srv-shm",
        workers=2,
        quantum_tasks=2,
        drain=drain_after_one_slice,
        context=RunContext([sink]),
    )
    server.run()
    (drained,) = sink.of_kind("server_drained")
    assert drained.jobs_released == 1
    assert _live_planes() == []
