"""Scheduler differential suite: many jobs over one pool == one job each.

The tentpole contract: N jobs multiplexed through one
:class:`~repro.runtime.scheduler.Scheduler` (shared executor,
group-aligned wave slicing, round-robin preemption) produce
byte-identical checkpoints and identical rankings/best handlers to
running each job alone through the blocking
:func:`~repro.synth.refinement.synthesize` — at one worker and at four,
and even when the scheduler is killed mid-fleet and a successor resumes
every job from its checkpoint lease.
"""

from dataclasses import replace

import pytest

from repro.dsl import RENO_DSL, family, with_budget
from repro.runtime import CollectorSink, RunContext
from repro.runtime.checkpoint import CheckpointLease
from repro.runtime.events import (
    JobCompleted,
    JobPreempted,
    JobStarted,
    LeaseStolen,
    PoolSpawned,
)
from repro.runtime.jobs import Job, JobState, ResultStore
from repro.runtime.scheduler import Scheduler
from repro.synth.refinement import (
    SynthesisConfig,
    synthesize,
    synthesize_core,
)

TINY = with_budget(RENO_DSL, max_depth=3, max_nodes=4)

FAST = SynthesisConfig(
    initial_samples=6,
    initial_keep=3,
    completion_cap=8,
    max_iterations=2,
    exhaustive_cap=120,
)


def _essentials(result):
    """Everything about a SynthesisResult except wall-clock time."""
    return (
        result.best.handler,
        result.best.distance,
        result.dsl_name,
        tuple(result.iterations),
        result.initial_bucket_count,
        result.total_handlers_scored,
        result.total_sketches_drawn,
    )


def _job_slices(reno_segments):
    """Three distinct (but overlapping) working sets — distinct searches."""
    return {
        "alpha": reno_segments[:6],
        "beta": reno_segments[:4],
        "gamma": reno_segments[1:6],
    }


def _core_job(job_id, segments, config, **kwargs):
    return Job(
        job_id=job_id,
        source=lambda: synthesize_core(segments, TINY, config),
        **kwargs,
    )


@pytest.mark.parametrize("workers", [1, 4])
def test_fleet_matches_sequential(reno_segments, tmp_path, workers):
    slices = _job_slices(reno_segments)
    sequential = {}
    for job_id, segments in slices.items():
        config = replace(
            FAST, checkpoint_path=str(tmp_path / f"seq_{job_id}.jsonl")
        )
        sequential[job_id] = synthesize(segments, TINY, config)

    scheduler = Scheduler(workers=workers, quantum_tasks=5)
    for job_id, segments in slices.items():
        config = replace(
            FAST, checkpoint_path=str(tmp_path / f"fleet_{job_id}.jsonl")
        )
        scheduler.submit(
            _core_job(
                job_id,
                segments,
                config,
                checkpoint_path=config.checkpoint_path,
            )
        )
    with scheduler:
        completed = scheduler.run()

    assert sorted(completed) == sorted(slices)
    for job_id in slices:
        assert _essentials(completed[job_id].result) == _essentials(
            sequential[job_id]
        )
        fleet_bytes = (tmp_path / f"fleet_{job_id}.jsonl").read_text(
            encoding="utf-8"
        )
        seq_bytes = (tmp_path / f"seq_{job_id}.jsonl").read_text(
            encoding="utf-8"
        )
        assert fleet_bytes == seq_bytes
        assert fleet_bytes.strip(), "jobs must checkpoint boundaries"
        # Interleaving really happened: every job gave up the executor.
        assert completed[job_id].preemptions > 0


def test_fleet_shares_one_pool(reno_segments, tmp_path):
    collector = CollectorSink()
    slices = _job_slices(reno_segments)
    with RunContext([collector]) as ctx:
        scheduler = Scheduler(workers=4, quantum_tasks=5, context=ctx)
        for job_id, segments in slices.items():
            scheduler.submit(_core_job(job_id, segments, FAST))
        with scheduler:
            completed = scheduler.run()
    assert len(completed) == 3
    spawns = [e for e in collector.events if isinstance(e, PoolSpawned)]
    assert len(spawns) == 1, "the whole fleet must share one pool"
    preemptions = [
        e for e in collector.events if isinstance(e, JobPreempted)
    ]
    assert preemptions, "multi-job fleets must interleave"


def test_solo_job_takes_whole_waves(reno_segments):
    scheduler = Scheduler(workers=1, quantum_tasks=1)
    scheduler.submit(_core_job("solo", reno_segments[:6], FAST))
    with scheduler:
        completed = scheduler.run()
    job = completed["solo"]
    assert job.preemptions == 0
    assert job.slices_dispatched == job.waves_dispatched


def test_priority_runs_first(reno_segments):
    collector = CollectorSink()
    with RunContext([collector]) as ctx:
        scheduler = Scheduler(workers=1, max_active=1, context=ctx)
        scheduler.submit(
            _core_job("background", reno_segments[:4], FAST, priority=0)
        )
        scheduler.submit(
            _core_job("urgent", reno_segments[:6], FAST, priority=5)
        )
        with scheduler:
            scheduler.run()
    finished = [
        e.job_id for e in collector.events if isinstance(e, JobCompleted)
    ]
    assert finished == ["urgent", "background"]


def test_job_failure_isolated_from_fleet(reno_segments):
    def broken():
        raise RuntimeError("boom")
        yield  # pragma: no cover - make it a generator

    scheduler = Scheduler(workers=1)
    scheduler.submit(Job(job_id="bad", source=broken))
    scheduler.submit(_core_job("good", reno_segments[:4], FAST))
    with scheduler:
        completed = scheduler.run()
    assert "good" in completed
    assert scheduler.failed["bad"].state is JobState.FAILED
    assert "RuntimeError: boom" in scheduler.failed["bad"].error


def test_live_foreign_lease_defers_job(reno_segments, tmp_path):
    checkpoint = str(tmp_path / "contested.jsonl")
    foreign = CheckpointLease(checkpoint, "other-scheduler", 3600.0)
    assert foreign.acquire()
    scheduler = Scheduler(workers=1)
    scheduler.submit(
        _core_job(
            "contested",
            reno_segments[:4],
            replace(FAST, checkpoint_path=checkpoint),
            checkpoint_path=checkpoint,
        )
    )
    scheduler.submit(_core_job("free", reno_segments[:4], FAST))
    with scheduler:
        completed = scheduler.run()
    assert "free" in completed
    assert [job.job_id for job in scheduler.deferred] == ["contested"]
    assert scheduler.jobs["contested"].state is JobState.PENDING


def test_anytime_answers_stream_to_store(reno_segments, tmp_path):
    store = ResultStore(str(tmp_path / "results"))
    scheduler = Scheduler(workers=1, store=store, quantum_tasks=5)
    scheduler.submit(_core_job("watched", reno_segments[:6], FAST))
    with scheduler:
        scheduler.run()
    latest = store.latest("watched")
    assert latest["state"] == "completed"
    assert latest["best_expression"]
    assert latest["best_distance"] is not None
    # History: pending -> running -> progress... -> completed.
    with open(store._path("watched"), "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    assert len(lines) >= 3


# ---------------------------------------------------------------- kill/resume

# Needs buckets that survive iteration 1 so the resumed half genuinely
# replays from a mid-run boundary (same rationale as test_resume.py).
RESUME_DSL = with_budget(family("reno"), max_depth=4, max_nodes=7)

RESUME_CONFIG = SynthesisConfig(
    initial_samples=4,
    initial_keep=4,
    completion_cap=4,
    max_iterations=2,
    exhaustive_cap=30,
    series_budget=48,
    max_replay_rows=192,
)


def _resume_job(job_id, segments, checkpoint, *, resume=False):
    config = replace(
        RESUME_CONFIG,
        checkpoint_path=checkpoint,
        resume_path=checkpoint if resume else None,
    )
    return Job(
        job_id=job_id,
        source=lambda: synthesize_core(segments, RESUME_DSL, config),
        checkpoint_path=checkpoint,
        resumed=resume,
    )


@pytest.mark.parametrize("workers", [1, 4])
def test_killed_fleet_resumes_every_job(reno_segments, tmp_path, workers):
    slices = {"one": reno_segments[:6], "two": reno_segments[:5]}
    sequential = {}
    for job_id, segments in slices.items():
        config = replace(
            RESUME_CONFIG,
            checkpoint_path=str(tmp_path / f"seq_{job_id}.jsonl"),
        )
        sequential[job_id] = synthesize(segments, RESUME_DSL, config)

    paths = {
        job_id: str(tmp_path / f"fleet_{job_id}.jsonl") for job_id in slices
    }
    first = Scheduler(workers=workers, quantum_tasks=4, owner="first")
    for job_id, segments in slices.items():
        first.submit(_resume_job(job_id, segments, paths[job_id]))
    while first.step():
        jobs = first.jobs.values()
        if all(job.iterations_done >= 1 for job in jobs):
            break
    in_flight = [
        job_id
        for job_id, job in first.jobs.items()
        if job.state is JobState.RUNNING
    ]
    assert in_flight, "kill point must leave work in flight"
    first.close(release_leases=False)  # simulated crash: leases stay

    collector = CollectorSink()
    with RunContext([collector]) as ctx:
        second = Scheduler(
            workers=workers,
            quantum_tasks=4,
            steal_leases=True,
            context=ctx,
            owner="second",
        )
        for job_id, segments in slices.items():
            second.submit(
                _resume_job(job_id, segments, paths[job_id], resume=True)
            )
        with second:
            completed = second.run()

    assert sorted(completed) == sorted(slices)
    stolen = [e for e in collector.events if isinstance(e, LeaseStolen)]
    assert {e.job_id for e in stolen} == set(in_flight)
    resumed_flags = {
        e.job_id: e.resumed
        for e in collector.events
        if isinstance(e, JobStarted)
    }
    assert all(resumed_flags.values())
    for job_id, segments in slices.items():
        full = sequential[job_id]
        resumed = completed[job_id].result
        assert resumed.expression == full.expression
        assert resumed.distance == pytest.approx(full.distance)
        assert resumed.total_handlers_scored == full.total_handlers_scored
        assert [r.ranking for r in resumed.iterations] == [
            r.ranking for r in full.iterations
        ]
        fleet_bytes = (tmp_path / f"fleet_{job_id}.jsonl").read_text(
            encoding="utf-8"
        )
        seq_bytes = (tmp_path / f"seq_{job_id}.jsonl").read_text(
            encoding="utf-8"
        )
        assert fleet_bytes == seq_bytes


# -------------------------------------------------------------- tiny fleets


def test_sub_parallel_waves_never_spawn_a_pool(reno_segments):
    """Jobs whose every wave is under the executor's parallel threshold
    score inline in the scheduler process, even on a parallel scheduler
    (MIN_PARALLEL_SKETCHES short-circuit, shared-pool edition)."""
    from repro.dsl.parser import parse
    from repro.runtime.protocol import ScorerReady, WaveRequest
    from repro.synth.scoring import Scorer
    from repro.synth.sketch import Sketch

    segments = reno_segments[:2]
    sketches = tuple(
        Sketch.from_expr(parse(text))
        for text in ("cwnd + mss", "cwnd + c0 * reno_inc")
    )

    def tiny_core(ctx):
        scorer = Scorer(
            constant_pool=(0.5, 1.0), completion_cap=4, cache=None
        )
        yield ScorerReady(
            scorer=scorer,
            workers=4,
            max_pool_rebuilds=3,
            watchdog_seconds=None,
            fault_plan=None,
            context=ctx,
        )
        reply = yield WaveRequest(
            groups=(sketches,),  # 2 tasks < MIN_PARALLEL_SKETCHES
            segments=segments,
            deadline=None,
            min_results=0,
            fused=True,
            phase="refinement",
        )
        return reply.grouped

    collector = CollectorSink()
    with RunContext([collector]) as ctx:
        scheduler = Scheduler(workers=4, quantum_tasks=1, context=ctx)
        scheduler.submit(Job(job_id="t1", source=lambda: tiny_core(ctx)))
        scheduler.submit(Job(job_id="t2", source=lambda: tiny_core(ctx)))
        with scheduler:
            completed = scheduler.run()
    assert len(completed) == 2
    for job in completed.values():
        grouped = job.result
        assert len(grouped) == 1 and len(grouped[0]) == 2
    spawns = [e for e in collector.events if isinstance(e, PoolSpawned)]
    assert spawns == []


# ------------------------------------------------- fleet-server plumbing


def test_lease_renewed_on_every_dispatched_slice(reno_segments, tmp_path):
    """The heartbeat: every wave slice a job dispatches renews its
    lease, so a peer watching the lease file sees liveness at slice
    granularity, not just iteration boundaries."""
    checkpoint = str(tmp_path / "hb.jsonl")
    lease = CheckpointLease(checkpoint, "svc", 30.0)
    assert lease.acquire()
    renewals = []
    original_renew = lease.renew
    lease.renew = lambda: (renewals.append(1), original_renew())[1]
    job = _core_job(
        "hb",
        reno_segments[:4],
        replace(FAST, checkpoint_path=checkpoint),
        checkpoint_path=checkpoint,
    )
    job.lease = lease
    scheduler = Scheduler(workers=1, quantum_tasks=3)
    scheduler.submit(job)
    with scheduler:
        completed = scheduler.run()
    assert completed["hb"].slices_dispatched > 0
    assert len(renewals) >= completed["hb"].slices_dispatched


def test_pre_acquired_lease_is_used_not_reacquired(reno_segments, tmp_path):
    """A claim-loop server arbitrates ownership before submission; the
    scheduler must run under that lease (service identity) instead of
    acquiring its own — and release it at retirement."""
    from repro.runtime.checkpoint import lease_path, read_lease

    checkpoint = str(tmp_path / "pre.jsonl")
    lease = CheckpointLease(checkpoint, "fleet-server-1", 3600.0)
    assert lease.acquire()
    job = _core_job(
        "pre",
        reno_segments[:4],
        replace(FAST, checkpoint_path=checkpoint),
        checkpoint_path=checkpoint,
    )
    job.lease = lease
    scheduler = Scheduler(workers=1, owner="scheduler-identity")
    scheduler.submit(job)
    assert scheduler.step()  # job admitted and running under the lease
    state = read_lease(lease_path(checkpoint))
    assert state is not None and state.owner == "fleet-server-1"
    assert scheduler.deferred == []
    with scheduler:
        completed = scheduler.run()
    assert "pre" in completed
    assert read_lease(lease_path(checkpoint)) is None  # released


def test_drain_stops_dispatch_and_close_releases_leases(
    reno_segments, tmp_path
):
    from repro.runtime.checkpoint import lease_path, read_lease

    # Two jobs so waves are sliced (a solo job takes whole waves and
    # could finish before the drain lands).
    checkpoints = {
        job_id: str(tmp_path / f"drain_{job_id}.jsonl")
        for job_id in ("one", "two")
    }
    scheduler = Scheduler(workers=1, quantum_tasks=2)
    for job_id, checkpoint in checkpoints.items():
        scheduler.submit(
            _core_job(
                job_id,
                reno_segments[:6],
                replace(FAST, checkpoint_path=checkpoint),
                checkpoint_path=checkpoint,
            )
        )
    while scheduler.slices_dispatched < 3:
        assert scheduler.step(), "jobs finished before the drain landed"
    slices_before = scheduler.slices_dispatched
    scheduler.request_drain()
    assert scheduler.draining
    assert not scheduler.step()  # reports no work immediately
    assert scheduler.slices_dispatched == slices_before  # nothing more ran
    active = [job.job_id for job in scheduler.active_jobs]
    assert active, "drain must leave the in-flight jobs claimable"
    for job_id in active:
        assert read_lease(lease_path(checkpoints[job_id])) is not None
    scheduler.close(release_leases=True)
    for job_id in active:
        assert read_lease(lease_path(checkpoints[job_id])) is None


def test_service_fault_plan_kills_between_slices(
    reno_segments, tmp_path, monkeypatch
):
    import os as os_module

    from repro.runtime.faults import ServiceFaultPlan

    exits = []
    monkeypatch.setattr(os_module, "_exit", exits.append)
    scheduler = Scheduler(
        workers=1,
        quantum_tasks=2,
        service_fault_plan=ServiceFaultPlan.make(kill_after_slices=1),
    )
    scheduler.submit(_core_job("victim", reno_segments[:6], FAST))
    with scheduler:
        scheduler.run()
    assert exits and exits[0] == 70
