"""Fault-tolerance tests: every recovery path, under both executors.

The :class:`~repro.runtime.faults.FaultPlan` makes each failure mode the
executors guard against injectable on demand — crash a worker on a
specific sketch, hang a candidate, raise from the scorer, or fail a
priming broadcast — so the supervision, quarantine, and degradation
machinery is exercised deterministically in CI rather than only when a
real cluster misbehaves.
"""

import multiprocessing
import os
import time

import pytest

from repro.dsl import RENO_DSL, with_budget
from repro.dsl.parser import parse
from repro.runtime.context import RunContext
from repro.runtime.executors import PooledExecutor, SerialExecutor
from repro.runtime.faults import FaultPlan
from repro.runtime.sinks import CollectorSink
from repro.runtime.supervise import (
    WORST_DISTANCE,
    SupervisionPolicy,
    watchdog_available,
)
from repro.synth.refinement import SynthesisConfig, synthesize
from repro.synth.scoring import Scorer
from repro.synth.sketch import Sketch

SKETCH_TEXTS = [
    "cwnd + c0 * reno_inc",
    "cwnd + reno_inc",
    "c0 * mss",
    "cwnd + mss",
    "(c0 < c1) ? cwnd + mss : cwnd",
]

WATCHDOG = 0.3

#: CI runs this suite across a worker matrix (see ``.github/workflows``):
#: serial recovery paths always run; pooled paths use this many workers,
#: clamped to the pool's minimum of 2.
WORKERS = int(os.environ.get("REPRO_FAULT_WORKERS", "2"))
POOL_WORKERS = max(2, WORKERS)


@pytest.fixture(scope="module")
def sketches():
    return [Sketch.from_expr(parse(text)) for text in SKETCH_TEXTS]


def _scorer():
    return Scorer(constant_pool=(0.5, 1.0), completion_cap=8)


def _collected():
    collector = CollectorSink()
    return collector, RunContext([collector])


def _baseline(sketches, segments):
    return [
        r.distance for r in SerialExecutor(_scorer()).score(sketches, segments)
    ]


def _assert_no_pool_children(deadline_seconds=10.0):
    """The scoring pool's workers must all be reaped after close()."""
    deadline = time.monotonic() + deadline_seconds
    while time.monotonic() < deadline:
        if not multiprocessing.active_children():
            return
        time.sleep(0.05)
    raise AssertionError(
        f"leaked worker processes: {multiprocessing.active_children()}"
    )


# ------------------------------------------------------------------- serial


def test_serial_raise_quarantined(sketches, reno_segments):
    victim = sketches[1]
    executor = SerialExecutor(
        _scorer(), fault_plan=FaultPlan.make(raise_on=[victim])
    )
    results = executor.score(sketches, reno_segments[:1])
    assert len(results) == len(sketches)
    assert results[1].distance == WORST_DISTANCE
    assert [q.sketch for q in executor.quarantined] == [str(victim)]
    assert executor.quarantined[0].reason == "exception"
    # Healthy siblings still score normally.
    assert results[0].distance < WORST_DISTANCE


@pytest.mark.skipif(not watchdog_available(), reason="needs SIGALRM")
def test_serial_hang_quarantined_within_watchdog(sketches, reno_segments):
    victim = sketches[2]
    executor = SerialExecutor(
        _scorer(),
        watchdog_seconds=WATCHDOG,
        fault_plan=FaultPlan.make(hang_on=[victim], hang_seconds=60.0),
    )
    started = time.monotonic()
    results = executor.score(sketches, reno_segments[:1])
    elapsed = time.monotonic() - started
    assert elapsed < 10.0  # quarantined by the watchdog, not the hang
    assert results[2].distance == WORST_DISTANCE
    assert [q.reason for q in executor.quarantined] == ["timeout"]


def test_serial_crash_fault_quarantined(sketches, reno_segments):
    # A process cannot survive its own crash, so in serial mode the
    # crash fault raises instead and lands on the quarantine path.
    executor = SerialExecutor(
        _scorer(), fault_plan=FaultPlan.make(crash_on=[sketches[0]])
    )
    results = executor.score(sketches, reno_segments[:1])
    assert results[0].distance == WORST_DISTANCE
    assert executor.quarantined[0].reason == "exception"


def test_serial_quarantine_emits_event(sketches, reno_segments):
    collector, ctx = _collected()
    executor = SerialExecutor(
        _scorer(), context=ctx, fault_plan=FaultPlan.make(raise_on=[sketches[0]])
    )
    executor.score(sketches, reno_segments[:1])
    events = collector.of_kind("sketch_quarantined")
    assert [e.sketch for e in events] == [str(sketches[0])]


# ------------------------------------------------------- pooled: quarantine


def test_pooled_raise_quarantined_without_rebuild(sketches, reno_segments):
    victim = sketches[1]
    with PooledExecutor(
        _scorer(), POOL_WORKERS, fault_plan=FaultPlan.make(raise_on=[victim])
    ) as pooled:
        results = pooled.score(sketches, reno_segments[:1])
        assert pooled.pools_spawned == 1  # failure stayed inside the task
    assert results[1].distance == WORST_DISTANCE
    assert [q.sketch for q in pooled.quarantined] == [str(victim)]
    assert pooled.quarantined[0].reason == "exception"


@pytest.mark.skipif(not watchdog_available(), reason="needs SIGALRM")
def test_pooled_hang_quarantined_pool_survives(sketches, reno_segments):
    # The in-worker SIGALRM interrupts the hang, so the pool itself
    # stays healthy: no rebuild, siblings scored normally.
    victim = sketches[3]
    with PooledExecutor(
        _scorer(),
        POOL_WORKERS,
        watchdog_seconds=WATCHDOG,
        fault_plan=FaultPlan.make(hang_on=[victim], hang_seconds=60.0),
    ) as pooled:
        started = time.monotonic()
        results = pooled.score(sketches, reno_segments[:1])
        elapsed = time.monotonic() - started
        assert pooled.pools_spawned == 1
    assert elapsed < 30.0
    assert results[3].distance == WORST_DISTANCE
    assert [q.reason for q in pooled.quarantined] == ["timeout"]
    healthy = [r for i, r in enumerate(results) if i != 3]
    assert all(r.distance < WORST_DISTANCE for r in healthy)


# ------------------------------------------------------ pooled: supervision


def test_pooled_transient_crash_recovers_same_scores(sketches, reno_segments):
    """A worker crash mid-wave: rebuild, re-score the suffix, and end up
    with exactly the fault-free distances (crash limited to the first
    pool generation, so the rebuilt pool scores the sketch cleanly)."""
    working = reno_segments[:1]
    baseline = _baseline(sketches, working)
    collector, ctx = _collected()
    plan = FaultPlan.make(crash_on=[sketches[2]], crash_generations=[1])
    with PooledExecutor(
        _scorer(), POOL_WORKERS, context=ctx, fault_plan=plan
    ) as pooled:
        results = pooled.score(sketches, working)
        assert pooled.pool_rebuilds == 1
        assert not pooled.degraded
    assert [r.distance for r in results] == pytest.approx(baseline)
    assert pooled.quarantined == []
    assert len(collector.of_kind("worker_crashed")) == 1
    assert len(collector.of_kind("pool_rebuilt")) == 1


def test_pooled_persistent_crash_quarantines_culprit(sketches, reno_segments):
    """A sketch that kills its worker every time: after two strikes the
    head of the incomplete suffix is quarantined and the wave completes.

    The victim leads the wave so crash attribution is deterministic: a
    break mid-wave races against sibling results (the completed prefix
    the parent kept may stop short of the true culprit), but an empty
    prefix always blames — correctly — the first sketch.
    """
    working = reno_segments[:1]
    victim = sketches[0]
    collector, ctx = _collected()
    with PooledExecutor(
        _scorer(),
        POOL_WORKERS,
        context=ctx,
        fault_plan=FaultPlan.make(crash_on=[victim]),
    ) as pooled:
        results = pooled.score(sketches, working)
        assert not pooled.degraded
    assert len(results) == len(sketches)
    assert results[0].distance == WORST_DISTANCE
    assert [q.sketch for q in pooled.quarantined] == [str(victim)]
    assert pooled.quarantined[0].reason == "worker-crash"
    assert len(collector.of_kind("worker_crashed")) == 2
    assert collector.of_kind("sketch_quarantined")


def test_pooled_degrades_to_serial_after_rebuild_budget(
    sketches, reno_segments
):
    """Crashes on distinct sketches exhaust the rebuild budget without
    ever giving one sketch two strikes: supervision degrades to serial,
    where the crash fault raises instead and the wave still completes."""
    working = reno_segments[:1]
    collector, ctx = _collected()
    plan = FaultPlan.make(crash_on=[sketches[0], sketches[3]])
    policy = SupervisionPolicy(
        max_pool_rebuilds=1, backoff_base_seconds=0.0
    )
    with PooledExecutor(
        _scorer(), POOL_WORKERS, context=ctx, policy=policy, fault_plan=plan
    ) as pooled:
        results = pooled.score(sketches, working)
        assert pooled.degraded
    assert len(results) == len(sketches)
    degraded = collector.of_kind("degraded_to_serial")
    assert len(degraded) == 1
    # In the serial fallback the crash faults raise -> quarantine.
    reasons = {q.reason for q in pooled.quarantined}
    assert "exception" in reasons


def test_pooled_failing_run_leaks_no_children(sketches, reno_segments):
    with PooledExecutor(
        _scorer(),
        POOL_WORKERS,
        policy=SupervisionPolicy(backoff_base_seconds=0.0),
        fault_plan=FaultPlan.make(crash_on=[sketches[0]]),
    ) as pooled:
        pooled.score(sketches, reno_segments[:1])
    pooled.close()  # idempotent with __exit__'s close
    _assert_no_pool_children()


def test_pooled_close_is_idempotent(sketches, reno_segments):
    pooled = PooledExecutor(_scorer(), POOL_WORKERS)
    pooled.score(sketches, reno_segments[:1])
    for _ in range(3):
        pooled.close()
    _assert_no_pool_children()


# ------------------------------------------------------ pooled: broadcasts


def test_broadcast_failure_rebuilds_once(sketches, reno_segments):
    working = reno_segments[:1]
    baseline = _baseline(sketches, working)
    collector, ctx = _collected()
    with PooledExecutor(
        _scorer(),
        POOL_WORKERS,
        context=ctx,
        fault_plan=FaultPlan(broadcast_failures=1),
    ) as pooled:
        results = pooled.score(sketches, working)
        assert pooled.pool_rebuilds == 1
        assert not pooled.degraded
    assert [r.distance for r in results] == pytest.approx(baseline)
    crashes = collector.of_kind("worker_crashed")
    assert [c.reason for c in crashes] == ["broadcast"]
    assert len(collector.of_kind("pool_rebuilt")) == 1


def test_second_broadcast_failure_degrades_to_serial(sketches, reno_segments):
    working = reno_segments[:1]
    baseline = _baseline(sketches, working)
    collector, ctx = _collected()
    with PooledExecutor(
        _scorer(),
        POOL_WORKERS,
        context=ctx,
        fault_plan=FaultPlan(broadcast_failures=2),
    ) as pooled:
        results = pooled.score(sketches, working)
        assert pooled.degraded
    assert [r.distance for r in results] == pytest.approx(baseline)
    assert len(collector.of_kind("degraded_to_serial")) == 1
    _assert_no_pool_children()


# ---------------------------------------------------------- whole-run


TINY = with_budget(RENO_DSL, max_depth=3, max_nodes=4)


def _run_config(**overrides):
    base = dict(
        initial_samples=6,
        initial_keep=3,
        completion_cap=8,
        max_iterations=2,
        exhaustive_cap=60,
    )
    base.update(overrides)
    return SynthesisConfig(**base)


def _drawn_sketch(index=1, samples=6):
    """A sketch the refinement loop will actually dispatch to the pool:
    drawn in iteration 1, from a bucket big enough to leave the parent
    process (waves under MIN_PARALLEL_SKETCHES stay in-process).  The
    default ``index=1`` sits mid-wave, so a prefix completes before a
    crash fault fires."""
    from repro.synth.pool import BucketPool

    pool = BucketPool(TINY)
    pool.draw(samples)
    bucket = max(pool.live, key=lambda b: len(b.drawn))
    assert len(bucket.drawn) >= 4
    return bucket.drawn[index]


def test_synthesize_survives_mid_wave_crash_same_result(reno_segments):
    """Acceptance: crash a worker mid-wave; the run completes with the
    same final ranking and winner as the fault-free run."""
    segments = reno_segments[:6]
    clean = synthesize(segments, TINY, _run_config(workers=POOL_WORKERS))
    plan = FaultPlan.make(
        crash_on=[_drawn_sketch()], crash_generations=[1]
    )
    faulty = synthesize(
        segments, TINY, _run_config(workers=POOL_WORKERS, fault_plan=plan)
    )
    assert faulty.pool_rebuilds >= 1
    assert faulty.quarantined == ()
    assert faulty.expression == clean.expression
    assert faulty.distance == pytest.approx(clean.distance)
    assert [r.kept for r in faulty.iterations] == [
        r.kept for r in clean.iterations
    ]
    _assert_no_pool_children()


def test_synthesize_reports_quarantine_in_result(reno_segments):
    segments = reno_segments[:6]
    victim = _drawn_sketch()
    plan = FaultPlan.make(raise_on=[victim])
    result = synthesize(
        segments, TINY, _run_config(workers=POOL_WORKERS, fault_plan=plan)
    )
    assert any(q.sketch == str(victim) for q in result.quarantined)
    assert "quarantined" in result.summary()
    assert result.best.distance < WORST_DISTANCE


def test_synthesize_serial_quarantines_and_completes(reno_segments):
    """The serial executor survives the same faults: a raising candidate
    and a hanging candidate both end as quarantine records, and the run
    still produces a finite winner."""
    segments = reno_segments[:6]
    hang_on = [_drawn_sketch(index=2)] if watchdog_available() else []
    plan = FaultPlan.make(
        raise_on=[_drawn_sketch(index=0)],
        hang_on=hang_on,
        hang_seconds=60.0,
    )
    result = synthesize(
        segments,
        TINY,
        _run_config(workers=1, fault_plan=plan, watchdog_seconds=WATCHDOG),
    )
    assert result.quarantined
    assert result.best.distance < WORST_DISTANCE


# -------------------------------------------------------------- fused waves
#
# Grouped (fused-wave) dispatch shares warm-start bounds across the
# wave, so individual pruned distances are timing-dependent under a
# pool; only each group's MINIMUM is contractually exact.  These tests
# therefore compare minima, never raw per-sketch distances.


def _group_minima(grouped):
    return [min(r.distance for r in group) for group in grouped]


def test_grouped_transient_crash_recovers_same_minima(
    sketches, reno_segments
):
    """A worker crash mid-fused-wave: rebuild, rescore the suffix from
    the flat completed prefix, and land on the fault-free group minima
    with nothing quarantined."""
    working = reno_segments[:1]
    groups = [sketches[:3], sketches[3:]]
    expected = _group_minima(
        SerialExecutor(_scorer()).score_grouped(groups, working)
    )
    collector, ctx = _collected()
    plan = FaultPlan.make(crash_on=[sketches[2]], crash_generations=[1])
    with PooledExecutor(
        _scorer(), POOL_WORKERS, context=ctx, fault_plan=plan
    ) as pooled:
        grouped = pooled.score_grouped(groups, working)
        assert pooled.pool_rebuilds == 1
        assert not pooled.degraded
    assert _group_minima(grouped) == pytest.approx(expected)
    assert pooled.quarantined == []
    assert len(collector.of_kind("worker_crashed")) == 1
    assert len(collector.of_kind("pool_rebuilt")) == 1


def test_grouped_persistent_crash_quarantines_culprit(
    sketches, reno_segments
):
    """A sketch that kills its worker every generation: the flat-index
    blame lands on it (it leads the interleaved wave), it is quarantined
    after two strikes, and every group still reports its exact
    fault-free minimum."""
    working = reno_segments[:1]
    victim = sketches[0]
    groups = [sketches[:3], sketches[3:]]
    survivors = _group_minima(
        SerialExecutor(_scorer()).score_grouped(
            [sketches[1:3], sketches[3:]], working
        )
    )
    collector, ctx = _collected()
    with PooledExecutor(
        _scorer(),
        POOL_WORKERS,
        context=ctx,
        fault_plan=FaultPlan.make(crash_on=[victim]),
    ) as pooled:
        grouped = pooled.score_grouped(groups, working)
        assert not pooled.degraded
    assert [len(group) for group in grouped] == [3, 2]
    assert grouped[0][0].distance == WORST_DISTANCE
    assert _group_minima(grouped) == pytest.approx(survivors)
    assert [q.sketch for q in pooled.quarantined] == [str(victim)]
    assert pooled.quarantined[0].reason == "worker-crash"
    assert len(collector.of_kind("worker_crashed")) == 2


# ------------------------------------------------- service fault plans


def test_service_fault_plan_make_normalizes():
    from repro.runtime.faults import SERVICE_KILL_EXIT_CODE, ServiceFaultPlan

    plan = ServiceFaultPlan.make(poison_jobs=["bad", "worse"])
    assert plan.poison_jobs == frozenset({"bad", "worse"})
    assert plan.kill_after_slices is None
    assert plan.exit_code == SERVICE_KILL_EXIT_CODE
    assert not plan.is_empty()
    assert ServiceFaultPlan.make().is_empty()


def test_service_kill_due_fleet_wide_counter():
    from repro.runtime.faults import ServiceFaultPlan, service_kill_due

    plan = ServiceFaultPlan.make(kill_after_slices=4)
    assert not service_kill_due(
        plan, job_id="any", job_slices=3, total_slices=3
    )
    assert service_kill_due(
        plan, job_id="any", job_slices=1, total_slices=4
    )
    assert not service_kill_due(
        None, job_id="any", job_slices=99, total_slices=99
    )


def test_service_kill_due_poison_job_is_per_job():
    from repro.runtime.faults import ServiceFaultPlan, service_kill_due

    plan = ServiceFaultPlan.make(poison_jobs=["bad"], poison_after_slices=2)
    assert not service_kill_due(
        plan, job_id="bad", job_slices=1, total_slices=50
    )
    assert service_kill_due(
        plan, job_id="bad", job_slices=2, total_slices=50
    )
    assert not service_kill_due(
        plan, job_id="good", job_slices=50, total_slices=50
    )


def test_apply_service_faults_exits_with_plan_code(monkeypatch):
    from repro.runtime.faults import ServiceFaultPlan, apply_service_faults

    exits = []
    monkeypatch.setattr(os, "_exit", exits.append)
    plan = ServiceFaultPlan.make(kill_after_slices=2, exit_code=71)
    apply_service_faults(plan, job_id="j", job_slices=1, total_slices=1)
    assert exits == []
    apply_service_faults(plan, job_id="j", job_slices=2, total_slices=2)
    assert exits == [71]
    apply_service_faults(None, job_id="j", job_slices=9, total_slices=9)
    assert exits == [71]
