"""ScoreCache: keying, identity safety, LRU bound, counters."""

import pytest

from repro.runtime.cache import ScoreCache


def _key(cache, text, segment, metric="dtw"):
    return cache.key(text, segment, metric, 384, 128)


def test_miss_then_hit(reno_segments):
    cache = ScoreCache()
    segment = reno_segments[0]
    key = _key(cache, "cwnd + mss", segment)
    assert cache.get(key, segment) is None
    cache.put(key, segment, 1.25)
    assert cache.get(key, segment) == 1.25
    assert (cache.hits, cache.misses) == (1, 1)
    assert cache.hit_rate == 0.5
    assert len(cache) == 1


def test_distinct_segments_do_not_collide(reno_segments):
    cache = ScoreCache()
    first, second = reno_segments[0], reno_segments[1]
    cache.put(_key(cache, "cwnd", first), first, 1.0)
    assert cache.get(_key(cache, "cwnd", second), second) is None


def test_metric_and_budgets_are_part_of_the_key(reno_segments):
    cache = ScoreCache()
    segment = reno_segments[0]
    cache.put(cache.key("cwnd", segment, "dtw", 384, 128), segment, 1.0)
    assert cache.get(
        cache.key("cwnd", segment, "euclidean", 384, 128), segment
    ) is None
    assert cache.get(
        cache.key("cwnd", segment, "dtw", 384, 64), segment
    ) is None


def test_identity_verified_on_lookup(reno_segments):
    """A key built from a *different* object with a recycled id must not
    return the stale entry (the cache stores the segment and checks
    identity, like Scorer.table_for)."""
    cache = ScoreCache()
    segment = reno_segments[0]
    key = _key(cache, "cwnd", segment)
    cache.put(key, segment, 1.0)
    impostor = reno_segments[1]
    # Forge a key claiming the impostor has the original's id.
    assert cache.get(key, impostor) is None
    assert cache.misses == 1
    # The poisoned entry was dropped entirely.
    assert len(cache) == 0


def test_lru_bound_evicts_oldest(reno_segments):
    cache = ScoreCache(max_entries=2)
    segment = reno_segments[0]
    keys = [_key(cache, f"expr{i}", segment) for i in range(3)]
    for index, key in enumerate(keys):
        cache.put(key, segment, float(index))
    assert len(cache) == 2
    assert cache.get(keys[0], segment) is None  # evicted
    assert cache.get(keys[2], segment) == 2.0


def test_lru_touch_on_hit(reno_segments):
    cache = ScoreCache(max_entries=2)
    segment = reno_segments[0]
    a, b, c = (_key(cache, t, segment) for t in ("a", "b", "c"))
    cache.put(a, segment, 0.0)
    cache.put(b, segment, 1.0)
    assert cache.get(a, segment) == 0.0  # refresh a
    cache.put(c, segment, 2.0)  # evicts b, not a
    assert cache.get(a, segment) == 0.0
    assert cache.get(b, segment) is None


def test_stats_event(reno_segments):
    cache = ScoreCache()
    segment = reno_segments[0]
    key = _key(cache, "cwnd", segment)
    cache.get(key, segment)
    cache.put(key, segment, 3.0)
    cache.get(key, segment)
    stats = cache.stats()
    assert (stats.hits, stats.misses, stats.entries) == (1, 1, 1)
    cache.clear()
    assert len(cache) == 0


def test_rejects_nonpositive_bound():
    with pytest.raises(ValueError):
        ScoreCache(max_entries=0)
