"""Executor tests: serial/pooled agreement, priming, deadlines, chunking."""

import time

import pytest

from repro.dsl.parser import parse
from repro.runtime.cache import ScoreCache
from repro.runtime.context import RunContext
from repro.runtime.executors import (
    PooledExecutor,
    SerialExecutor,
    derive_chunksize,
    make_executor,
)
from repro.runtime.sinks import CollectorSink
from repro.synth.scoring import Scorer
from repro.synth.sketch import Sketch

SKETCH_TEXTS = [
    "cwnd + c0 * reno_inc",
    "cwnd + reno_inc",
    "c0 * mss",
    "cwnd + mss",
    "(c0 < c1) ? cwnd + mss : cwnd",
]


@pytest.fixture(scope="module")
def sketches():
    return [Sketch.from_expr(parse(text)) for text in SKETCH_TEXTS]


def _scorer(cache=None, batch=True):
    return Scorer(
        constant_pool=(0.5, 1.0), completion_cap=8, cache=cache, batch=batch
    )


# ----------------------------------------------------------------- chunking


def test_derive_chunksize_spreads_small_waves():
    # The old hardcoded chunksize=8 put 10 tasks on at most 2 workers.
    assert derive_chunksize(10, 4) == 1
    assert derive_chunksize(3, 8) == 1
    assert derive_chunksize(1000, 4) == 63
    assert derive_chunksize(0, 4) == 1


# ------------------------------------------------------------------- serial


def test_serial_matches_direct_scoring(sketches, reno_segments):
    scorer = _scorer()
    executor = SerialExecutor(scorer)
    working = reno_segments[:2]
    results = executor.score(sketches, working)
    assert len(results) == len(sketches)
    fresh = _scorer()
    for sketch, result in zip(sketches, results):
        assert fresh.score_sketch(sketch, working).distance == pytest.approx(
            result.distance
        )
    assert executor.cache_stats() is None


def test_serial_deadline_cuts_wave_short(sketches, reno_segments):
    executor = SerialExecutor(_scorer())
    expired = time.perf_counter() - 1.0
    assert (
        executor.score(sketches, reno_segments[:1], deadline=expired) == []
    )
    partial = executor.score(
        sketches, reno_segments[:1], deadline=expired, min_results=2
    )
    assert len(partial) == 2


def test_serial_cache_stats_reported(sketches, reno_segments):
    executor = SerialExecutor(_scorer(cache=ScoreCache()))
    executor.score(sketches, reno_segments[:1])
    stats = executor.cache_stats()
    assert stats is not None
    assert stats.lookups > 0


# ------------------------------------------------------------------- pooled


def test_pooled_matches_serial(sketches, reno_segments):
    working = reno_segments[:2]
    serial = SerialExecutor(_scorer()).score(sketches, working)
    with PooledExecutor(_scorer(), 2) as pooled:
        parallel = pooled.score(sketches, working)
    assert [r.distance for r in parallel] == pytest.approx(
        [r.distance for r in serial]
    )
    assert [r.handler for r in parallel] == [r.handler for r in serial]


def test_pooled_spawns_one_pool_and_reprimes_on_change(
    sketches, reno_segments
):
    collector = CollectorSink()
    ctx = RunContext([collector])
    with PooledExecutor(_scorer(), 2, context=ctx) as pooled:
        first = reno_segments[:2]
        second = reno_segments[:3]
        pooled.score(sketches, first)
        pooled.score(sketches, first)  # unchanged set: no re-prime
        pooled.score(sketches, second)
        pooled.score(sketches, second)
    assert len(collector.of_kind("pool_spawned")) == 1
    primes = collector.of_kind("segments_primed")
    assert [p.segment_count for p in primes] == [2, 3]
    assert pooled.pools_spawned == 1


def test_pooled_tiny_wave_stays_in_process(sketches, reno_segments):
    collector = CollectorSink()
    ctx = RunContext([collector])
    with PooledExecutor(_scorer(), 2, context=ctx) as pooled:
        results = pooled.score(sketches[:2], reno_segments[:1])
    assert len(results) == 2
    assert collector.of_kind("pool_spawned") == []  # never forked


def test_pooled_deadline_respects_min_results(sketches, reno_segments):
    with PooledExecutor(_scorer(), 2) as pooled:
        expired = time.perf_counter() - 1.0
        results = pooled.score(
            sketches, reno_segments[:1], deadline=expired, min_results=1
        )
    assert len(results) == 1


def test_pooled_aggregates_worker_cache_stats(sketches, reno_segments):
    with PooledExecutor(_scorer(cache=ScoreCache()), 2) as pooled:
        pooled.score(sketches, reno_segments[:2])
        stats = pooled.cache_stats()
    assert stats is not None
    assert stats.lookups > 0


def test_pooled_rejects_single_worker():
    with pytest.raises(ValueError):
        PooledExecutor(_scorer(), 1)


def test_make_executor_picks_by_workers():
    assert isinstance(make_executor(_scorer(), 1), SerialExecutor)
    pooled = make_executor(_scorer(), 3)
    assert isinstance(pooled, PooledExecutor)
    pooled.close()


# ------------------------------------------------------------ scoring stats


def test_serial_reports_scoring_stats(sketches, reno_segments):
    executor = SerialExecutor(_scorer())
    executor.score(sketches, reno_segments[:2])
    stats = executor.scoring_stats()
    assert stats.kind == "scoring_stats"
    assert stats.batched_waves > 0


def test_pooled_scoring_stats_match_serial(sketches, reno_segments):
    """Counter totals are per-sketch work, so the worker split (and the
    per-worker scorers it implies) cannot change the aggregate."""
    working = reno_segments[:2]
    serial = SerialExecutor(_scorer())
    serial.score(sketches, working)
    expected = serial.scoring_stats()
    with PooledExecutor(_scorer(), 2) as pooled:
        pooled.score(sketches, working)
        stats = pooled.scoring_stats()
    assert stats == expected
    assert stats.batched_waves == len(sketches)


def test_pooled_batch_flag_reaches_workers(sketches, reno_segments):
    with PooledExecutor(_scorer(batch=False), 2) as pooled:
        pooled.score(sketches, reno_segments[:2])
        stats = pooled.scoring_stats()
    assert stats.batched_waves == 0
