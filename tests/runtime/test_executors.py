"""Executor tests: serial/pooled agreement, priming, deadlines, chunking."""

import time

import pytest

from repro.dsl.parser import parse
from repro.runtime.cache import ScoreCache
from repro.runtime.context import RunContext
from repro.runtime.executors import (
    PooledExecutor,
    SerialExecutor,
    derive_chunksize,
    make_executor,
)
from repro.runtime.sinks import CollectorSink
from repro.synth.scoring import Scorer
from repro.synth.sketch import Sketch

SKETCH_TEXTS = [
    "cwnd + c0 * reno_inc",
    "cwnd + reno_inc",
    "c0 * mss",
    "cwnd + mss",
    "(c0 < c1) ? cwnd + mss : cwnd",
]


@pytest.fixture(scope="module")
def sketches():
    return [Sketch.from_expr(parse(text)) for text in SKETCH_TEXTS]


def _scorer(cache=None, batch=True):
    return Scorer(
        constant_pool=(0.5, 1.0), completion_cap=8, cache=cache, batch=batch
    )


# ----------------------------------------------------------------- chunking


def test_derive_chunksize_spreads_small_waves():
    # The old hardcoded chunksize=8 put 10 tasks on at most 2 workers.
    assert derive_chunksize(10, 4) == 1
    assert derive_chunksize(3, 8) == 1
    assert derive_chunksize(1000, 4) == 63
    assert derive_chunksize(0, 4) == 1


# ------------------------------------------------------------------- serial


def test_serial_matches_direct_scoring(sketches, reno_segments):
    scorer = _scorer()
    executor = SerialExecutor(scorer)
    working = reno_segments[:2]
    results = executor.score(sketches, working)
    assert len(results) == len(sketches)
    fresh = _scorer()
    for sketch, result in zip(sketches, results):
        assert fresh.score_sketch(sketch, working).distance == pytest.approx(
            result.distance
        )
    assert executor.cache_stats() is None


def test_serial_deadline_cuts_wave_short(sketches, reno_segments):
    executor = SerialExecutor(_scorer())
    expired = time.perf_counter() - 1.0
    assert (
        executor.score(sketches, reno_segments[:1], deadline=expired) == []
    )
    partial = executor.score(
        sketches, reno_segments[:1], deadline=expired, min_results=2
    )
    assert len(partial) == 2


def test_serial_cache_stats_reported(sketches, reno_segments):
    executor = SerialExecutor(_scorer(cache=ScoreCache()))
    executor.score(sketches, reno_segments[:1])
    stats = executor.cache_stats()
    assert stats is not None
    assert stats.lookups > 0


# ------------------------------------------------------------------- pooled


def test_pooled_matches_serial(sketches, reno_segments):
    working = reno_segments[:2]
    serial = SerialExecutor(_scorer()).score(sketches, working)
    with PooledExecutor(_scorer(), 2) as pooled:
        parallel = pooled.score(sketches, working)
    assert [r.distance for r in parallel] == pytest.approx(
        [r.distance for r in serial]
    )
    assert [r.handler for r in parallel] == [r.handler for r in serial]


def test_pooled_spawns_one_pool_and_reprimes_on_change(
    sketches, reno_segments
):
    collector = CollectorSink()
    ctx = RunContext([collector])
    with PooledExecutor(_scorer(), 2, context=ctx) as pooled:
        first = reno_segments[:2]
        second = reno_segments[:3]
        pooled.score(sketches, first)
        pooled.score(sketches, first)  # unchanged set: no re-prime
        pooled.score(sketches, second)
        pooled.score(sketches, second)
    assert len(collector.of_kind("pool_spawned")) == 1
    primes = collector.of_kind("segments_primed")
    assert [p.segment_count for p in primes] == [2, 3]
    assert pooled.pools_spawned == 1


def test_pooled_tiny_wave_stays_in_process(sketches, reno_segments):
    collector = CollectorSink()
    ctx = RunContext([collector])
    with PooledExecutor(_scorer(), 2, context=ctx) as pooled:
        results = pooled.score(sketches[:2], reno_segments[:1])
    assert len(results) == 2
    assert collector.of_kind("pool_spawned") == []  # never forked


def test_pooled_deadline_respects_min_results(sketches, reno_segments):
    with PooledExecutor(_scorer(), 2) as pooled:
        expired = time.perf_counter() - 1.0
        results = pooled.score(
            sketches, reno_segments[:1], deadline=expired, min_results=1
        )
    assert len(results) == 1


def test_pooled_aggregates_worker_cache_stats(sketches, reno_segments):
    with PooledExecutor(_scorer(cache=ScoreCache()), 2) as pooled:
        pooled.score(sketches, reno_segments[:2])
        stats = pooled.cache_stats()
    assert stats is not None
    assert stats.lookups > 0


def test_pooled_rejects_single_worker():
    with pytest.raises(ValueError):
        PooledExecutor(_scorer(), 1)


def test_make_executor_picks_by_workers():
    assert isinstance(make_executor(_scorer(), 1), SerialExecutor)
    pooled = make_executor(_scorer(), 3)
    assert isinstance(pooled, PooledExecutor)
    pooled.close()


# ------------------------------------------------------------ scoring stats


def test_serial_reports_scoring_stats(sketches, reno_segments):
    executor = SerialExecutor(_scorer())
    executor.score(sketches, reno_segments[:2])
    stats = executor.scoring_stats()
    assert stats.kind == "scoring_stats"
    assert stats.batched_waves > 0


def test_pooled_scoring_stats_match_serial(sketches, reno_segments):
    """Counter totals are per-sketch work, so the worker split (and the
    per-worker scorers it implies) cannot change the aggregate.  The
    wall-clock and transport fields (precompute ms, shm bytes) describe
    *how* the work ran, not how much — normalized out before comparing."""
    import dataclasses

    def deterministic(stats):
        return dataclasses.replace(
            stats,
            envelope_precompute_ms=0.0,
            shm_bytes=0,
            broadcast_bytes_saved=0,
        )

    working = reno_segments[:2]
    serial = SerialExecutor(_scorer())
    serial.score(sketches, working)
    expected = serial.scoring_stats()
    with PooledExecutor(_scorer(), 2) as pooled:
        pooled.score(sketches, working)
        stats = pooled.scoring_stats()
        assert stats.shm_bytes > 0  # the plane carried the broadcast
        assert stats.broadcast_bytes_saved >= stats.shm_bytes
    assert deterministic(stats) == deterministic(expected)
    assert stats.batched_waves == len(sketches)


def test_pooled_batch_flag_reaches_workers(sketches, reno_segments):
    with PooledExecutor(_scorer(batch=False), 2) as pooled:
        pooled.score(sketches, reno_segments[:2])
        stats = pooled.scoring_stats()
    assert stats.batched_waves == 0


# ------------------------------------------------------------- fused waves


def test_interleave_groups_round_robin():
    from repro.runtime.executors import interleave_groups

    assert interleave_groups([2, 3, 1]) == [
        (0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (1, 2),
    ]
    assert interleave_groups([]) == []
    assert interleave_groups([0, 2]) == [(1, 0), (1, 1)]


def test_wave_order_leaders_then_runs():
    from repro.runtime.executors import wave_order

    # min_results=1, run_length=1: leaders round, then round-robin —
    # identical to interleave_groups.
    assert wave_order([2, 3, 1], 1) == [
        (0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (1, 2),
    ]
    # run_length=2: leaders first, then same-group runs of two,
    # round-robined across groups.
    assert wave_order([3, 4, 1], 1, run_length=2) == [
        (0, 0), (1, 0), (2, 0),
        (0, 1), (0, 2), (1, 1), (1, 2),
        (1, 3),
    ]
    assert wave_order([], 1) == []
    assert wave_order([0, 2], 1, run_length=4) == [(1, 0), (1, 1)]


def test_wave_order_prefix_covers_min_results():
    """The first sum(min(size, m)) tasks hold every group's first m
    members — the deadline contract — for any run length."""
    from repro.runtime.executors import wave_order

    sizes = [4, 1, 7, 3]
    for m in (1, 2, 3):
        for run_length in (1, 2, 5):
            order = wave_order(sizes, m, run_length=run_length)
            mandatory = sum(min(size, m) for size in sizes)
            prefix = order[:mandatory]
            for group, size in enumerate(sizes):
                want = {(group, rank) for rank in range(min(size, m))}
                assert want <= set(prefix)
            # Any flat prefix maps to per-group rank prefixes.
            seen = [0] * len(sizes)
            for group, rank in order:
                assert rank == seen[group]
                seen[group] += 1


def test_serial_grouped_minima_match_per_group(sketches, reno_segments):
    """The fused wave may return inf for warm-pruned sketches, but every
    group's *minimum* is the exact per-group score() minimum — the only
    number the refinement ranking consumes."""
    working = reno_segments[:2]
    groups = [sketches[:3], sketches[3:]]
    executor = SerialExecutor(_scorer())
    grouped = executor.score_grouped(groups, working)
    assert [len(results) for results in grouped] == [3, 2]
    for group, results in zip(groups, grouped):
        plain = SerialExecutor(_scorer()).score(group, working)
        assert min(r.distance for r in results) == min(
            r.distance for r in plain
        )
    # Non-pruned distances are the exact per-sketch scores.
    for group, results in zip(groups, grouped):
        for sketch, result in zip(group, results):
            if result.distance != float("inf"):
                assert result.distance == _scorer().score_sketch(
                    sketch, working
                ).distance


def test_serial_grouped_deadline_keeps_min_results_per_group(
    sketches, reno_segments
):
    executor = SerialExecutor(_scorer())
    expired = time.perf_counter() - 1.0
    grouped = executor.score_grouped(
        [sketches[:3], sketches[3:]],
        reno_segments[:1],
        deadline=expired,
        min_results=1,
    )
    assert [len(results) for results in grouped] == [1, 1]


def test_pooled_grouped_matches_serial_grouped(sketches, reno_segments):
    working = reno_segments[:2]
    groups = [sketches[:3], sketches[3:]]
    serial = SerialExecutor(_scorer()).score_grouped(groups, working)
    with PooledExecutor(_scorer(), 2) as pooled:
        parallel = pooled.score_grouped(groups, working)
    assert [len(results) for results in parallel] == [3, 2]
    for mine, theirs in zip(parallel, serial):
        assert min(r.distance for r in mine) == min(
            r.distance for r in theirs
        )


def test_pooled_grouped_deadline_keeps_min_results_per_group(
    sketches, reno_segments
):
    with PooledExecutor(_scorer(), 2) as pooled:
        expired = time.perf_counter() - 1.0
        grouped = pooled.score_grouped(
            [sketches[:3], sketches[3:]],
            reno_segments[:1],
            deadline=expired,
            min_results=1,
        )
    assert [len(results) for results in grouped] == [1, 1]


def test_grouped_fuses_small_groups_onto_pool(sketches, reno_segments):
    """Regression for the small-bucket serial leak: three sub-threshold
    buckets used to score inline one score() call at a time with the
    pool idle; flattened they clear MIN_PARALLEL_SKETCHES and fork."""
    collector = CollectorSink()
    ctx = RunContext([collector])
    with PooledExecutor(_scorer(), 2, context=ctx) as pooled:
        pooled.score(sketches[:2], reno_segments[:1])
        assert collector.of_kind("pool_spawned") == []  # old path: inline
        grouped = pooled.score_grouped(
            [sketches[:2], sketches[2:4], sketches[4:]], reno_segments[:1]
        )
    assert [len(results) for results in grouped] == [2, 2, 1]
    assert len(collector.of_kind("pool_spawned")) == 1  # fused wave forked


def test_grouped_tiny_flattened_wave_stays_in_process(
    sketches, reno_segments
):
    collector = CollectorSink()
    ctx = RunContext([collector])
    with PooledExecutor(_scorer(), 2, context=ctx) as pooled:
        grouped = pooled.score_grouped(
            [sketches[:1], sketches[1:2]], reno_segments[:1]
        )
    assert [len(results) for results in grouped] == [1, 1]
    assert collector.of_kind("pool_spawned") == []


def test_grouped_emits_wave_dispatched(sketches, reno_segments):
    collector = CollectorSink()
    ctx = RunContext([collector])
    executor = SerialExecutor(_scorer(), context=ctx)
    executor.score_grouped([sketches[:3], sketches[3:]], reno_segments[:1])
    waves = collector.of_kind("wave_dispatched")
    assert len(waves) == 1
    assert waves[0].groups == 2
    assert waves[0].tasks == 5
    assert waves[0].workers == 1
    stats = executor.scoring_stats()
    assert stats.fused_waves == 1
    assert stats.fused_tasks == 5
    assert stats.peak_in_flight >= 1
    assert stats.mean_occupancy > 0.0


def test_pooled_stats_single_broadcast(sketches, reno_segments, monkeypatch):
    """stats() must pay ONE worker broadcast where cache_stats() +
    scoring_stats() used to pay two."""
    from repro.runtime.cache import ScoreCache as _Cache

    with PooledExecutor(_scorer(cache=_Cache()), 2) as pooled:
        pooled.score(sketches, reno_segments[:2])
        calls = []
        original = pooled._broadcast

        def counting(segments):
            calls.append(segments)
            return original(segments)

        monkeypatch.setattr(pooled, "_broadcast", counting)
        cache, scoring = pooled.stats()
    assert calls == [None]
    assert cache is not None and cache.lookups > 0
    assert scoring.batched_waves == len(sketches)


# ------------------------------------------------------- lifecycle (service)


def test_pooled_close_then_reuse_across_runs(sketches, reno_segments):
    """close() is a clean seam between sequential runs: the next score
    respawns a pool without counting it as a crash rebuild."""
    collector = CollectorSink()
    ctx = RunContext([collector])
    pooled = PooledExecutor(_scorer(), 2, context=ctx)
    working = reno_segments[:2]
    first = pooled.score(sketches, working)
    pooled.close()
    pooled.close()  # idempotent
    second = pooled.score(sketches, working)
    pooled.close()
    assert [r.distance for r in second] == pytest.approx(
        [r.distance for r in first]
    )
    assert pooled.pools_spawned == 2
    assert pooled.pool_rebuilds == 0  # planned respawns are not faults
    assert len(collector.of_kind("pool_spawned")) == 2


def test_pooled_reset_stats_isolates_sequential_runs(sketches, reno_segments):
    from repro.runtime.cache import ScoreCache as _Cache

    with PooledExecutor(_scorer(cache=_Cache()), 2) as pooled:
        working = reno_segments[:2]
        pooled.score(sketches, working)
        cache, scoring = pooled.stats()
        assert cache.lookups > 0
        assert scoring.batched_waves > 0
        pooled.reset_stats()
        cache, scoring = pooled.stats()
        assert cache is not None and cache.lookups == 0
        assert scoring.batched_waves == 0
        # Cache *contents* survive the counter reset (only counters
        # zero): the entries gauge is still populated after rescoring.
        # (Hit counts are not asserted here — task->worker placement is
        # nondeterministic, so a task may miss a peer worker's cache.)
        pooled.score(sketches, working)
        cache, _ = pooled.stats()
        assert cache.entries > 0
        assert cache.lookups > 0


def test_serial_reset_stats_zeroes_counters(sketches, reno_segments):
    from repro.runtime.cache import ScoreCache as _Cache

    executor = SerialExecutor(_scorer(cache=_Cache()))
    executor.score(sketches, reno_segments[:1])
    assert executor.cache_stats().lookups > 0
    executor.reset_stats()
    assert executor.cache_stats().lookups == 0
    assert executor.scoring_stats().batched_waves == 0
    # Contents survive the counter reset: rescoring the same wave in
    # one process hits every entry the first run populated.
    executor.score(sketches, reno_segments[:1])
    assert executor.cache_stats().hits >= len(sketches)
    assert executor.cache_stats().misses == 0


def test_pooled_adopt_scorer_switches_jobs(sketches, reno_segments):
    """Adopting a new scorer redirects scoring without a new pool, and
    stats aggregate across every scorer the pool has served."""
    collector = CollectorSink()
    ctx = RunContext([collector])
    working = reno_segments[:2]
    first_scorer = _scorer()
    second_scorer = Scorer(
        constant_pool=(0.25, 2.0), completion_cap=4, cache=None
    )
    with PooledExecutor(first_scorer, 2, context=ctx) as pooled:
        baseline = pooled.score(sketches, working)
        pooled.adopt_scorer(second_scorer)
        adopted = pooled.score(sketches, working)
        pooled.adopt_scorer(first_scorer)
        back = pooled.score(sketches, working)
    expected = SerialExecutor(
        Scorer(constant_pool=(0.25, 2.0), completion_cap=4, cache=None)
    ).score(sketches, working)
    assert [r.distance for r in adopted] == pytest.approx(
        [r.distance for r in expected]
    )
    assert [r.distance for r in back] == pytest.approx(
        [r.distance for r in baseline]
    )
    assert pooled.pools_spawned == 1  # adoption never respawns
    assert len(collector.of_kind("pool_spawned")) == 1


def test_pooled_adopt_same_config_skips_broadcast(sketches, reno_segments):
    """Two scorers with identical config share one worker install."""
    collector = CollectorSink()
    ctx = RunContext([collector])
    with PooledExecutor(_scorer(), 2, context=ctx) as pooled:
        working = reno_segments[:2]
        first = pooled.score(sketches, working)
        pooled.adopt_scorer(_scorer())  # identical config
        second = pooled.score(sketches, working)
    assert [r.distance for r in second] == pytest.approx(
        [r.distance for r in first]
    )
    # Same segments + same config: the second wave needed no re-prime,
    # so the epoch (segments_primed count) did not move.
    assert len(collector.of_kind("segments_primed")) == 1
