"""Trace-signature tests."""

import numpy as np
import pytest

from repro.classify.features import (
    SIGNATURE_POINTS,
    signature_distance,
    trace_signature,
)
from repro.errors import ClassificationError
from repro.trace.model import Trace


def test_signature_shape(reno_trace):
    signature = trace_signature(reno_trace)
    assert signature.shape == (2 * SIGNATURE_POINTS,)
    assert np.isfinite(signature).all()


def test_signature_scale_invariance(reno_trace):
    """Doubling all windows leaves the shape half unchanged."""
    import copy

    doubled = copy.deepcopy(reno_trace)
    for ack in doubled.acks:
        ack.cwnd_bytes *= 2
    original = trace_signature(reno_trace)
    scaled = trace_signature(doubled)
    assert np.allclose(
        original[:SIGNATURE_POINTS], scaled[:SIGNATURE_POINTS]
    )


def test_distinct_ccas_have_distinct_signatures(reno_trace, vegas_trace):
    distance = signature_distance(
        trace_signature(reno_trace), trace_signature(vegas_trace)
    )
    assert distance > 0.05


def test_same_cca_noisy_signature_is_close(reno_trace):
    from repro.trace.noise import NoiseModel, apply_noise

    noisy = apply_noise(
        reno_trace, NoiseModel(jitter_std=0.002, dropout=0.05, seed=11)
    )
    distance = signature_distance(
        trace_signature(reno_trace), trace_signature(noisy)
    )
    assert distance < 0.05


def test_short_trace_rejected():
    with pytest.raises(ClassificationError):
        trace_signature(Trace("x", "y", 1500))


def test_distance_symmetry(reno_trace, bbr_trace):
    a = trace_signature(reno_trace)
    b = trace_signature(bbr_trace)
    assert signature_distance(a, b) == pytest.approx(signature_distance(b, a))
    assert signature_distance(a, a) == 0.0
