"""Classifier tests with a reduced reference library (kept fast).

Targets are collected with measurement noise so classification is not a
trivial identity match against the deterministic reference traces.
"""

import pytest

from repro.classify.base import probe_config
from repro.classify.ccanalyzer import CcaAnalyzer
from repro.classify.gordon import GordonClassifier
from repro.trace.collect import CollectionConfig, collect_traces
from repro.trace.noise import NoiseModel

KNOWN = ("reno", "cubic", "bbr", "vegas")


@pytest.fixture(scope="module")
def gordon():
    return GordonClassifier(known_ccas=KNOWN)


@pytest.fixture(scope="module")
def analyzer():
    return CcaAnalyzer(known_ccas=KNOWN)


def _noisy_probe(cca_name):
    base = probe_config()
    config = CollectionConfig(
        duration=base.duration,
        environments=base.environments,
        noise=NoiseModel(jitter_std=0.002, dropout=0.03, cwnd_error=0.03, seed=5),
        max_acks_per_trace=base.max_acks_per_trace,
    )
    return collect_traces(cca_name, config)


@pytest.mark.parametrize("name", KNOWN)
def test_gordon_recovers_known_ccas_under_noise(gordon, name):
    verdict = gordon.classify(_noisy_probe(name))
    assert verdict.label == name


def test_gordon_unknown_for_foreign_cca(gordon):
    verdict = gordon.classify(_noisy_probe("student2"))
    assert verdict.is_unknown
    assert verdict.closest in KNOWN
    assert verdict.render().startswith("Unknown (")


def test_gordon_votes_counted(gordon):
    verdict = gordon.classify(_noisy_probe("reno"))
    assert sum(verdict.votes.values()) == 3  # one per probe environment


def test_ccanalyzer_recovers_reno(analyzer):
    verdict = analyzer.classify(_noisy_probe("reno"))
    assert verdict.label == "reno"


def test_ccanalyzer_ranking_sorted(analyzer):
    ranking = analyzer.rank(_noisy_probe("cubic"))
    distances = [distance for _, distance in ranking]
    assert distances == sorted(distances)
    assert ranking[0][0] == "cubic"


def test_ccanalyzer_unknown_reports_closest(analyzer):
    verdict = analyzer.classify(_noisy_probe("student4"))
    # A fixed 1-MSS window resembles nothing in the reduced library.
    assert verdict.is_unknown
    assert verdict.closest in KNOWN


def test_verdict_render_known():
    from repro.classify.base import ClassifierVerdict

    verdict = ClassifierVerdict(label="reno", closest="reno", distance=0.01)
    assert verdict.render() == "reno"
