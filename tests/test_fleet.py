"""Fleet behaviour: the spool state machine (:class:`JobLedger`), the
claim loop's takeover/backoff/quarantine decisions, graceful drain,
concurrent servers and submits, and the end-to-end chaos scenarios —
kill a subset of N subprocess servers, poison-job quarantine via the
CLI."""

import dataclasses
import json
import os
import subprocess
import sys
import threading
import time

import pytest

from repro.cli import main
from repro.dsl import family, with_budget
from repro.pipeline import reverse_engineer
from repro.runtime.checkpoint import (
    CheckpointLease,
    lease_path,
    read_lease,
    takeover_delay,
)
from repro.runtime.context import RunContext
from repro.runtime.sinks import CollectorSink
from repro.service import (
    FleetServer,
    JobLedger,
    JobRecord,
    fleet_status,
    load_specs,
    serve,
    submit_job,
)
from repro.synth.refinement import SynthesisConfig
from repro.trace.io import save_traces

FAST_OVERRIDES = {
    "initial_samples": 4,
    "initial_keep": 3,
    "completion_cap": 8,
    "max_iterations": 2,
    "exhaustive_cap": 120,
}


@pytest.fixture()
def archive(reno_trace, tmp_path):
    path = tmp_path / "reno.json"
    save_traces([reno_trace], str(path))
    return str(path)


def _submit(spool, job_id, archive, **kwargs):
    return submit_job(
        spool,
        job_id,
        traces=archive,
        dsl="reno",
        max_depth=3,
        max_nodes=4,
        config=dict(FAST_OVERRIDES),
        **kwargs,
    )


def _direct_reference(reno_trace):
    return reverse_engineer(
        [reno_trace],
        dsl=with_budget(family("reno"), max_depth=3, max_nodes=4),
        config=SynthesisConfig(**FAST_OVERRIDES),
    )


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class StubScheduler:
    """Just enough Scheduler surface for :meth:`FleetServer._claim_one`."""

    def __init__(self):
        self.jobs = {}
        self.submitted = []

    def submit(self, job):
        self.jobs[job.job_id] = job
        self.submitted.append(job)


def _checkpoint(spool, job_id):
    root = os.path.join(spool, "checkpoints")
    os.makedirs(root, exist_ok=True)
    return os.path.join(root, f"{job_id}.jsonl")


# ------------------------------------------------------------------ ledger


def test_ledger_round_trip(tmp_path):
    clock = FakeClock(50.0)
    ledger = JobLedger(str(tmp_path / "state"), clock=clock)
    written = ledger.write(
        JobRecord(
            job_id="j",
            state="running",
            attempts=3,
            crashes=1,
            owner="srv-a",
            last_failure={"reason": "server-died", "detail": "boom"},
        )
    )
    assert written.updated_at == 50.0
    read = ledger.read("j")
    assert read == written
    assert not any(
        ".tmp." in name for name in os.listdir(str(tmp_path / "state"))
    ), "ledger writes must not leave temp files behind"


def test_ledger_missing_or_corrupt_reads_as_fresh_queued(tmp_path):
    ledger = JobLedger(str(tmp_path / "state"))
    assert ledger.read("ghost") == JobRecord(job_id="ghost")
    with open(ledger.path("broken"), "w", encoding="utf-8") as handle:
        handle.write("{not json")
    assert ledger.read("broken") == JobRecord(job_id="broken")
    with open(ledger.path("listy"), "w", encoding="utf-8") as handle:
        json.dump([1, 2], handle)
    assert ledger.read("listy") == JobRecord(job_id="listy")


def test_ledger_transition_preserves_untouched_fields(tmp_path):
    ledger = JobLedger(str(tmp_path / "state"))
    ledger.write(
        JobRecord(job_id="j", state="running", attempts=2, crashes=1)
    )
    record = ledger.transition("j", "done", owner=None)
    assert record.state == "done"
    assert record.attempts == 2
    assert record.crashes == 1


# ------------------------------------------------- takeover eligibility


def _expired_peer_lease(spool, job_id, clock, ttl=8.0, owner="peer"):
    """A lease written by *owner* who then stops heartbeating."""
    peer = CheckpointLease(
        _checkpoint(spool, job_id), owner, ttl, clock=clock
    )
    assert peer.acquire()
    return read_lease(lease_path(_checkpoint(spool, job_id)))


def test_live_foreign_lease_blocks_unless_stealing(tmp_path, archive):
    spool = str(tmp_path / "spool")
    _submit(spool, "job", archive)
    clock = FakeClock()
    state = _expired_peer_lease(spool, "job", clock, ttl=8.0)
    polite = FleetServer(spool, server_id="srv-a", clock=clock)
    thief = FleetServer(
        spool, server_id="srv-b", steal_leases=True, clock=clock
    )
    record = JobRecord(job_id="job", state="running", owner="peer")
    clock.advance(1.0)  # well inside the TTL
    assert not polite._may_take_over("job", record, state)
    assert thief._may_take_over("job", record, state)


def test_takeover_waits_for_jitter_then_crash_backoff(tmp_path, archive):
    spool = str(tmp_path / "spool")
    _submit(spool, "job", archive)
    clock = FakeClock()
    ttl = 8.0
    state = _expired_peer_lease(spool, "job", clock, ttl=ttl)
    server = FleetServer(
        spool, server_id="srv-a", retry_backoff_seconds=4.0, clock=clock
    )
    jitter = takeover_delay("srv-a", "job", ttl)
    fresh = JobRecord(job_id="job", state="running", owner="peer")

    clock.now = state.renewed_at + ttl + jitter - 1e-6
    assert not server._may_take_over("job", fresh, state)
    clock.now = state.renewed_at + ttl + jitter + 1e-6
    assert server._may_take_over("job", fresh, state)

    # Two prior crashes: the wait stretches by base * 2**(2-1) = 8s.
    crashed = dataclasses.replace(fresh, crashes=2)
    clock.now = state.renewed_at + ttl + jitter + 8.0 - 0.5
    assert not server._may_take_over("job", crashed, state)
    clock.now = state.renewed_at + ttl + jitter + 8.0 + 0.5
    assert server._may_take_over("job", crashed, state)


def test_heartbeat_missed_emitted_once_per_expiry(tmp_path, archive):
    spool = str(tmp_path / "spool")
    _submit(spool, "job", archive)
    clock = FakeClock()
    state = _expired_peer_lease(spool, "job", clock, ttl=2.0)
    sink = CollectorSink()
    server = FleetServer(
        spool,
        server_id="srv-a",
        clock=clock,
        context=RunContext([sink], clock=clock),
    )
    record = JobRecord(job_id="job", state="running", owner="peer")
    clock.advance(5.0)
    server._may_take_over("job", record, state)
    server._may_take_over("job", record, state)
    missed = sink.of_kind("heartbeat_missed")
    assert len(missed) == 1
    assert missed[0].owner == "peer"
    assert missed[0].age_seconds == pytest.approx(5.0)
    assert missed[0].ttl_seconds == 2.0


# ------------------------------------------------------ claim-loop races


def test_claim_recheck_after_acquire_catches_fresh_completion(
    tmp_path, archive
):
    """Satellite regression: a peer finishes the job between the
    pre-claim store read and the lease acquire.  The winner must notice
    on its post-claim re-check, release, and submit nothing."""
    spool = str(tmp_path / "spool")
    _submit(spool, "job", archive)
    server = FleetServer(spool, server_id="srv-a")
    calls = {"n": 0}

    def flipping_latest(job_id):
        calls["n"] += 1
        if calls["n"] == 1:
            return None  # pre-claim read: nothing finished yet
        return {"job_id": job_id, "state": "completed"}

    server.store.latest = flipping_latest
    scheduler = StubScheduler()
    (spec,) = load_specs(spool)
    assert server._claim_one(spec, scheduler) is False
    assert calls["n"] >= 2, "the post-acquire re-check must run"
    assert not scheduler.submitted
    assert server.jobs_claimed == 0
    assert server.ledger.read("job").state == "done"
    assert read_lease(lease_path(_checkpoint(spool, "job"))) is None


def test_racing_claimants_yield_exactly_one_winner(tmp_path, archive):
    spool = str(tmp_path / "spool")
    _submit(spool, "job", archive)
    (spec,) = load_specs(spool)
    servers = [
        FleetServer(spool, server_id=f"srv-{tag}") for tag in "ab"
    ]
    schedulers = [StubScheduler(), StubScheduler()]
    barrier = threading.Barrier(2)
    wins = []

    def race(index):
        barrier.wait()
        if servers[index]._claim_one(spec, schedulers[index]):
            wins.append(index)

    threads = [
        threading.Thread(target=race, args=(i,)) for i in range(2)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(wins) == 1
    winner = servers[wins[0]]
    state = read_lease(lease_path(_checkpoint(spool, "job")))
    assert state is not None and state.owner == winner.server_id
    assert winner.ledger.read("job").owner == winner.server_id


def test_retry_budget_exhaustion_quarantines(tmp_path, archive):
    spool = str(tmp_path / "spool")
    _submit(spool, "job", archive)
    clock = FakeClock()
    _expired_peer_lease(spool, "job", clock, ttl=2.0)
    sink = CollectorSink()
    server = FleetServer(
        spool,
        server_id="srv-a",
        steal_leases=True,
        max_job_retries=2,
        clock=clock,
        context=RunContext([sink], clock=clock),
    )
    # The job has already crashed its server max_job_retries times.
    server.ledger.write(
        JobRecord(
            job_id="job",
            state="running",
            attempts=3,
            crashes=2,
            owner="peer",
        )
    )
    scheduler = StubScheduler()
    (spec,) = load_specs(spool)
    assert server._claim_one(spec, scheduler) is False
    assert not scheduler.submitted
    assert server.quarantined == ["job"]
    record = server.ledger.read("job")
    assert record.state == "quarantined"
    assert record.crashes == 3
    assert record.last_failure["reason"] == "retry-budget-exhausted"
    assert "peer" in record.last_failure["detail"]
    snapshot = server.store.latest("job")
    assert snapshot["state"] == "quarantined"
    assert snapshot["crashes"] == 3
    assert read_lease(lease_path(_checkpoint(spool, "job"))) is None
    (event,) = sink.of_kind("job_quarantined")
    assert event.reason == "retry-budget-exhausted"
    assert event.crashes == 3
    # The spool is settled (quarantined is terminal): a serve over it
    # returns immediately and fleet-status surfaces the parked job.
    assert server._spool_settled()
    status = fleet_status(spool, clock=clock)
    assert status["jobs"]["job"]["state"] == "quarantined"
    assert status["states"] == {"quarantined": 1}


# ------------------------------------------------------- drain + resume


def test_drain_requeues_in_flight_jobs_then_peer_finishes(
    tmp_path, archive, reno_trace
):
    spool = str(tmp_path / "spool")
    _submit(spool, "job", archive)
    sink = CollectorSink()
    calls = {"n": 0}

    def drain_after_one_slice():
        calls["n"] += 1
        return calls["n"] > 2

    server = FleetServer(
        spool,
        server_id="srv-a",
        quantum_tasks=2,
        drain=drain_after_one_slice,
        context=RunContext([sink]),
    )
    server.run()
    (drained,) = sink.of_kind("server_drained")
    assert drained.jobs_released == 1
    assert drained.slices_dispatched >= 1
    assert server.ledger.read("job").state == "queued"
    snapshot = server.store.latest("job")
    assert snapshot["state"] == "pending"
    assert read_lease(lease_path(_checkpoint(spool, "job"))) is None, (
        "drain must release the lease for peers"
    )
    # A successor picks the requeued job up and finishes it normally.
    snapshots = serve(spool, quantum_tasks=5)
    direct = _direct_reference(reno_trace)
    assert snapshots["job"]["state"] == "completed"
    assert snapshots["job"]["best_expression"] == direct.expression
    ledger = JobLedger(os.path.join(spool, "state"))
    record = ledger.read("job")
    assert record.state == "done"
    assert record.crashes == 0, "a graceful drain never spends retries"


def test_request_drain_is_signal_safe_noop_before_run(tmp_path):
    server = FleetServer(str(tmp_path / "spool"))
    server.request_drain()  # no scheduler yet: must not raise
    assert server._drain_requested()


# --------------------------------------------- concurrency over one spool


def test_concurrent_submit_mid_serve_is_picked_up(tmp_path, archive):
    """Satellite: specs submitted while a server is mid-claim-loop are
    claimed on a later scan of the same run — no restart needed."""
    spool = str(tmp_path / "spool")
    _submit(spool, "early", archive)

    class SubmitMidRun:
        def __init__(self):
            self.events = 0
            self.submitted = False

        def handle(self, event, t):
            self.events += 1
            if self.events >= 3 and not self.submitted:
                self.submitted = True
                _submit(spool, "late", archive)

        def close(self):
            pass

    hook = SubmitMidRun()
    snapshots = serve(
        spool,
        quantum_tasks=3,
        claim_interval_seconds=0.0,
        context=RunContext([hook]),
    )
    assert hook.submitted, "the mid-run submission must have happened"
    assert sorted(snapshots) == ["early", "late"]
    for job_id in ("early", "late"):
        assert snapshots[job_id]["state"] == "completed"
        results = os.path.join(spool, "results", f"{job_id}.jsonl")
        with open(results, "r", encoding="utf-8") as handle:
            completed = [
                line
                for line in handle.read().splitlines()
                if json.loads(line).get("state") == "completed"
            ]
        assert len(completed) == 1


def test_two_servers_one_spool_complete_everything_once(
    tmp_path, archive
):
    spool = str(tmp_path / "spool")
    for job_id in ("one", "two"):
        _submit(spool, job_id, archive)
    servers = [
        FleetServer(
            spool,
            server_id=f"srv-{tag}",
            quantum_tasks=3,
            claim_interval_seconds=0.05,
        )
        for tag in "ab"
    ]
    results = {}

    def run(server):
        results[server.server_id] = server.run()

    threads = [
        threading.Thread(target=run, args=(server,)) for server in servers
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    assert len(results) == 2
    assert sum(server.jobs_claimed for server in servers) == 2, (
        "every job must be claimed exactly once across the fleet"
    )
    ledger = JobLedger(os.path.join(spool, "state"))
    for job_id in ("one", "two"):
        assert ledger.read(job_id).state == "done"
        results_file = os.path.join(spool, "results", f"{job_id}.jsonl")
        with open(results_file, "r", encoding="utf-8") as handle:
            completed = [
                line
                for line in handle.read().splitlines()
                if json.loads(line).get("state") == "completed"
            ]
        assert len(completed) == 1


# -------------------------------------------------------- chaos (CLI)


def _spawn_serve(spool, server_id, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, ["src", env.get("PYTHONPATH")])
    )
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--spool", spool, "--quantum", "3",
            "--server-id", server_id,
            "--lease-ttl", "1", "--claim-interval", "0.2",
            "--retry-backoff", "0.5",
            *extra,
        ],
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def test_killing_a_subset_of_three_servers_loses_no_work(
    tmp_path, archive, reno_trace
):
    """The acceptance scenario: 3 serve daemons over one spool, the
    first (which claimed everything) dies mid-run, a second may die
    too; survivors take every job over within one TTL and the final
    answers — and checkpoint files, byte for byte — match a sequential
    single-server run."""
    reference = str(tmp_path / "reference")
    fleet = str(tmp_path / "fleet")
    for spool in (reference, fleet):
        for job_id in ("one", "two"):
            _submit(spool, job_id, archive)
    ref_snapshots = serve(reference, quantum_tasks=3)

    first = _spawn_serve(fleet, "s1", "--exit-after-slices", "3")
    time.sleep(0.5)  # let s1 claim both jobs before peers appear
    second = _spawn_serve(fleet, "s2", "--exit-after-slices", "3")
    third = _spawn_serve(fleet, "s3")
    outs = {}
    for name, proc in (("s1", first), ("s2", second), ("s3", third)):
        out, err = proc.communicate(timeout=300)
        outs[name] = (proc.returncode, out, err)
    assert outs["s1"][0] == 70, outs["s1"][2]
    assert outs["s2"][0] in (0, 70), outs["s2"][2]
    assert outs["s3"][0] == 0, outs["s3"][2]

    ledger = JobLedger(os.path.join(fleet, "state"))
    for job_id in ("one", "two"):
        record = ledger.read(job_id)
        assert record.state == "done"
        assert record.crashes >= 1, (
            "both jobs were in flight on s1 when it died: takeover "
            "must have been charged"
        )
        ref_ckpt = _checkpoint(reference, job_id)
        fleet_ckpt = _checkpoint(fleet, job_id)
        with open(ref_ckpt, "rb") as handle:
            ref_bytes = handle.read()
        with open(fleet_ckpt, "rb") as handle:
            assert handle.read() == ref_bytes, (
                f"{job_id}: checkpoint streams must be bit-identical"
            )
    status = fleet_status(fleet)
    direct = _direct_reference(reno_trace)
    for job_id in ("one", "two"):
        job = status["jobs"][job_id]
        assert job["state"] == "done"
        assert job["best_expression"] == direct.expression
        assert job["best_expression"] == (
            ref_snapshots[job_id]["best_expression"]
        )
        assert job["best_distance"] == pytest.approx(
            ref_snapshots[job_id]["best_distance"]
        )


def test_poison_job_is_retried_then_quarantined_via_cli(
    tmp_path, archive, capsys
):
    """A job that kills its server on every attempt burns through the
    retry budget (one initial claim + max_job_retries restarts), is
    quarantined with a structured reason, and never blocks the healthy
    rest of the spool."""
    spool = str(tmp_path / "spool")
    _submit(spool, "healthy", archive)
    healthy_first = serve(spool, quantum_tasks=5)
    assert healthy_first["healthy"]["state"] == "completed"
    _submit(spool, "poison", archive)

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, ["src", env.get("PYTHONPATH")])
    )
    codes = []
    for attempt in range(6):
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "serve",
                "--spool", spool, "--quantum", "3",
                "--server-id", f"pk{attempt}",
                "--steal-leases", "--max-job-retries", "2",
                "--retry-backoff", "0",
                "--poison-job", "poison", "--poison-after-slices", "1",
            ],
            cwd=os.path.dirname(
                os.path.dirname(os.path.abspath(__file__))
            ),
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        codes.append(proc.returncode)
        if proc.returncode != 70:
            break
    assert codes == [70, 70, 70, 1], (
        "expected initial claim + 2 retries (each killed, exit 70), "
        f"then quarantine on the 4th serve (exit 1); got {codes}"
    )
    record = JobLedger(os.path.join(spool, "state")).read("poison")
    assert record.state == "quarantined"
    assert record.attempts == 3  # 1 initial + max_job_retries restarts
    assert record.crashes == 3
    assert record.last_failure["reason"] == "retry-budget-exhausted"
    # The healthy job was untouched throughout.
    healthy = JobLedger(os.path.join(spool, "state")).read("healthy")
    assert healthy.state == "done"
    # fleet-status renders the quarantine for triage.
    assert main(["fleet-status", "--spool", spool, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["jobs"]["poison"]["state"] == "quarantined"
    assert payload["jobs"]["healthy"]["state"] == "done"
    assert payload["states"]["quarantined"] == 1
