"""CCA registry tests."""

import pytest

from repro.cca import (
    ALL_CCAS,
    KERNEL_CCAS,
    STUDENT_NAMES,
    CongestionControl,
    cca_names,
    make_cca,
)
from repro.errors import ReproError


def test_sixteen_kernel_ccas():
    assert len(KERNEL_CCAS) == 16
    expected = {
        "bbr", "bic", "cdg", "cubic", "highspeed", "htcp", "hybla",
        "illinois", "lp", "nv", "reno", "scalable", "vegas", "veno",
        "westwood", "yeah",
    }
    assert set(KERNEL_CCAS) == expected


def test_seven_students():
    assert len(STUDENT_NAMES) == 7


def test_all_is_union():
    assert set(ALL_CCAS) == set(KERNEL_CCAS) | set(STUDENT_NAMES)


def test_make_cca_instantiates_each():
    for name in ALL_CCAS:
        cca = make_cca(name)
        assert isinstance(cca, CongestionControl)
        assert cca.name == name
        assert cca.mss == 1500


def test_make_cca_custom_mss():
    assert make_cca("reno", mss=9000).mss == 9000


def test_make_cca_unknown():
    with pytest.raises(ReproError):
        make_cca("nonexistent")


def test_cca_names_sorted():
    names = cca_names()
    assert list(names) == sorted(names)
    assert len(cca_names(kernel_only=True)) == 16


def test_registry_names_match_class_attribute():
    for name, cls in ALL_CCAS.items():
        assert cls.name == name
