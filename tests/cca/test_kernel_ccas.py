"""Behavioral tests for each kernel CCA port.

Each test drives the algorithm with hand-built ACK/loss events and checks
the signature behavior that distinguishes it (increase law, decrease law,
delay reaction) — the same properties the paper's synthesized expressions
capture in Table 2.
"""

import pytest

from repro.cca import (
    Bbr,
    Bic,
    Cdg,
    Cubic,
    HighSpeed,
    Htcp,
    Hybla,
    Illinois,
    LowPriority,
    NewVegas,
    Reno,
    Scalable,
    Vegas,
    Veno,
    Westwood,
    Yeah,
)
from repro.cca.base import AckEvent, LossEvent
from repro.cca.highspeed import aimd_gains


def _ack(now, acked=1500, rtt=0.05, inflight=15000):
    return AckEvent(now=now, acked_bytes=acked, rtt_sample=rtt, inflight_bytes=inflight)


def _loss(now, kind="dupack"):
    return LossEvent(now=now, kind=kind, inflight_bytes=15000)


def _leave_slow_start(cca):
    cca.ssthresh = cca.cwnd


class TestReno:
    def test_slow_start_doubles_per_window(self):
        cca = Reno()
        start = cca.cwnd
        for index in range(10):
            cca.on_ack(_ack(index * 0.01))
        assert cca.cwnd == start + 10 * 1500

    def test_ca_one_mss_per_window(self):
        cca = Reno()
        _leave_slow_start(cca)
        window = cca.cwnd
        acks = int(window / 1500)
        for index in range(acks):
            cca.on_ack(_ack(index * 0.01))
        assert cca.cwnd == pytest.approx(window + 1500, rel=0.02)

    def test_halves_on_dupack_loss(self):
        cca = Reno()
        cca.cwnd = 60_000.0
        cca.on_loss(_loss(1.0))
        assert cca.cwnd == 30_000.0

    def test_timeout_resets_to_one_mss(self):
        cca = Reno()
        cca.cwnd = 60_000.0
        cca.on_loss(_loss(1.0, kind="timeout"))
        assert cca.cwnd == 1500.0


class TestCubic:
    def _settled(self):
        cca = Cubic()
        _leave_slow_start(cca)
        cca.cwnd = 60_000.0
        cca.on_loss(_loss(0.0))
        return cca

    def test_decrease_factor(self):
        cca = Cubic()
        cca.cwnd = 60_000.0
        _leave_slow_start(cca)
        cca.on_loss(_loss(0.0))
        assert cca.cwnd == pytest.approx(42_000.0)
        assert cca.wmax == 60_000.0

    def test_concave_then_convex_growth(self):
        """Cubic grows fast after the loss, plateaus near wmax, then
        accelerates again — the defining inflection."""
        cca = self._settled()
        samples = {}
        now = 0.0
        for index in range(4000):
            now = 0.01 * index
            cca.on_ack(_ack(now))
            samples[round(now, 2)] = cca.cwnd
        # near-plateau around K: growth in the middle epoch is smaller
        # than both the early epoch and the late epoch.
        early = samples[2.0] - samples[0.5]
        late = samples[float(round(now, 2))] - samples[float(round(now - 1.5, 2))]
        k_time = ((cca.wmax - 42_000) / cca.mss / cca.C) ** (1 / 3)
        mid_lo = round(max(k_time - 0.75, 0.01), 2)
        mid = samples[round(mid_lo + 1.5, 2)] - samples[mid_lo]
        assert mid < early
        assert mid < late

    def test_wmax_updated_on_loss(self):
        cca = self._settled()
        for index in range(100):
            cca.on_ack(_ack(index * 0.01))
        peak = cca.cwnd
        cca.on_loss(_loss(2.0))
        assert cca.wmax == pytest.approx(peak)


class TestBbr:
    def _warm(self, cca, rate_bps=1_250_000.0, rtt=0.05, n=400):
        for index in range(n):
            now = index * 0.01
            cca.on_ack(_ack(now, acked=int(rate_bps * 0.01), rtt=rtt))

    def test_window_tracks_bdp_multiple(self):
        cca = Bbr()
        self._warm(cca)
        bdp = 1_250_000 * 0.05
        assert cca.cwnd == pytest.approx(2.0 * bdp, rel=0.45)

    def test_ignores_isolated_dupack_loss(self):
        cca = Bbr()
        self._warm(cca)
        before = cca.cwnd
        cca.on_loss(_loss(5.0))
        assert cca.cwnd == before

    def test_timeout_restarts(self):
        cca = Bbr()
        self._warm(cca)
        cca.on_loss(_loss(5.0, kind="timeout"))
        assert cca.cwnd == 4 * 1500

    def test_gain_cycle_pulses(self):
        cca = Bbr()
        self._warm(cca)
        windows = set()
        for index in range(1600):
            now = 4.0 + index * 0.005
            cca.on_ack(_ack(now, acked=6250, rtt=0.05))
            windows.add(round(cca.cwnd / 1000))
        # Probing (1.25) and draining (0.75) phases give distinct levels.
        assert len(windows) >= 2


class TestVegasFamily:
    def test_vegas_increases_when_uncongested(self):
        cca = Vegas()
        _leave_slow_start(cca)
        start = cca.cwnd
        for index in range(50):
            cca.on_ack(_ack(index * 0.05, rtt=0.05))
        assert cca.cwnd > start

    def test_vegas_decreases_when_queueing(self):
        cca = Vegas()
        _leave_slow_start(cca)
        cca.on_ack(_ack(0.0, rtt=0.05))  # establish min_rtt
        cca.cwnd = 120_000.0
        start = cca.cwnd
        for index in range(50):
            cca.on_ack(_ack(0.1 + index * 0.1, rtt=0.10))  # heavy queueing
        assert cca.cwnd < start

    def test_veno_loss_discrimination(self):
        low, high = Veno(), Veno()
        for cca, rtt in ((low, 0.05), (high, 0.12)):
            _leave_slow_start(cca)
            cca.on_ack(_ack(0.0, rtt=0.05))
            cca.cwnd = 60_000.0
            cca.on_ack(_ack(0.1, rtt=rtt))
            cca.on_loss(_loss(0.2))
        assert low.cwnd == pytest.approx(48_000.0, rel=0.01)   # random: x0.8
        assert high.cwnd == pytest.approx(30_000.0, rel=0.01)  # congested: x0.5

    def test_nv_matches_vegas_logic(self):
        """NV adjusts like Vegas: grows while the measured rate shows an
        empty queue."""
        cca = NewVegas()
        _leave_slow_start(cca)
        start = cca.cwnd
        # A delivery rate consistent with cwnd/rtt: no queueing measured.
        for index in range(100):
            cca.on_ack(_ack(index * 0.01, acked=3000, rtt=0.05))
        assert cca.cwnd > start

    def test_yeah_fast_mode_is_scalable(self):
        cca = Yeah()
        _leave_slow_start(cca)
        window = cca.cwnd
        cca.on_ack(_ack(0.0, rtt=0.05, acked=1500))
        assert cca.cwnd == pytest.approx(window + 0.01 * 1500)


class TestRenoVariants:
    def test_westwood_backoff_uses_bandwidth_estimate(self):
        cca = Westwood()
        for index in range(100):
            cca.on_ack(_ack(index * 0.01, acked=1500, rtt=0.05))
        pipe = cca.ack_rate * cca.min_rtt
        cca.cwnd = 90_000.0
        cca.on_loss(_loss(1.0))
        assert cca.cwnd == pytest.approx(max(pipe, 3000), rel=0.01)

    def test_scalable_increase_proportional_to_acked(self):
        cca = Scalable()
        _leave_slow_start(cca)
        window = cca.cwnd
        cca.on_ack(_ack(0.0, acked=1500))
        assert cca.cwnd == window + 0.01 * 1500

    def test_scalable_gentle_decrease(self):
        cca = Scalable()
        cca.cwnd = 80_000.0
        cca.on_loss(_loss(1.0))
        assert cca.cwnd == pytest.approx(70_000.0)

    def test_hybla_scales_with_rtt(self):
        slow, fast = Hybla(), Hybla()
        for cca, rtt in ((slow, 0.1), (fast, 0.025)):
            _leave_slow_start(cca)
            cca.on_ack(_ack(0.0, rtt=rtt))
            window = cca.cwnd
            cca.on_ack(_ack(0.05, rtt=rtt))
            cca.gain = cca.cwnd - window
        assert slow.gain > fast.gain * 4  # rho^2 scaling (rho=4 vs 1)

    def test_lp_yields_on_delay(self):
        cca = LowPriority()
        _leave_slow_start(cca)
        cca.on_ack(_ack(0.0, rtt=0.05))
        cca.on_ack(_ack(0.1, rtt=0.20))  # grow the envelope
        cca.cwnd = 60_000.0
        cca.on_ack(_ack(0.2, rtt=0.18))  # well above 15% threshold
        assert cca.cwnd <= 30_000.0


class TestHtcpIllinois:
    def test_htcp_alpha_grows_with_loss_age(self):
        cca = Htcp()
        assert cca._alpha(0.5) == 1.0
        assert cca._alpha(2.0) > cca._alpha(1.5) > 1.0

    def test_htcp_beta_rtt_ratio(self):
        cca = Htcp()
        cca.on_ack(_ack(0.0, rtt=0.05))
        cca.on_ack(_ack(0.1, rtt=0.10))
        assert cca._beta() == pytest.approx(0.5)

    def test_illinois_alpha_falls_with_delay(self):
        cca = Illinois()
        for index in range(20):
            cca.on_ack(_ack(index * 0.01, rtt=0.05))
        low_delay_alpha = cca._alpha()
        for index in range(200):
            cca.on_ack(_ack(1.0 + index * 0.01, rtt=0.15))
        high_delay_alpha = cca._alpha()
        assert low_delay_alpha == pytest.approx(10.0)
        assert high_delay_alpha < low_delay_alpha

    def test_illinois_beta_rises_with_delay(self):
        cca = Illinois()
        for index in range(200):
            cca.on_ack(_ack(index * 0.01, rtt=0.05 if index < 100 else 0.15))
        assert cca._beta() > 0.125


class TestBicCdgHighspeed:
    def test_bic_binary_search_step(self):
        cca = Bic()
        _leave_slow_start(cca)
        cca.last_max = 120_000.0
        cca.cwnd = 60_000.0
        step = cca._increment_segments()
        assert step == pytest.approx(min((120_000 - 60_000) / 1500 / 2, 16.0))

    def test_bic_linear_probe_past_max(self):
        cca = Bic()
        _leave_slow_start(cca)
        cca.last_max = 60_000.0
        cca.cwnd = 61_500.0
        assert cca._increment_segments() == 2.0

    def test_bic_fast_convergence(self):
        cca = Bic()
        cca.last_max = 120_000.0
        cca.cwnd = 60_000.0
        cca.on_loss(_loss(1.0))
        assert cca.last_max == pytest.approx(60_000 * 0.9)

    def test_cdg_is_seeded_deterministic(self):
        def run(seed):
            cca = Cdg(seed=seed)
            _leave_slow_start(cca)
            for index in range(300):
                rtt = 0.05 + (index % 50) * 0.001  # rising delay rounds
                cca.on_ack(_ack(index * 0.01, rtt=rtt))
            return cca.cwnd

        assert run(1) == run(1)

    def test_highspeed_table_monotonic(self):
        previous_a, previous_b = aimd_gains(10)
        assert previous_a == 1 and previous_b == 0.5
        for window in (100, 500, 2000, 10_000, 50_000):
            a, b = aimd_gains(window)
            assert a >= previous_a
            assert b <= previous_b
            previous_a, previous_b = a, b

    def test_highspeed_aggressive_at_large_windows(self):
        cca = HighSpeed()
        _leave_slow_start(cca)
        cca.cwnd = 1500 * 1000  # 1000 segments
        window = cca.cwnd
        cca.on_ack(_ack(0.0, acked=1500))
        gain = cca.cwnd - window
        assert gain > 5 * 1500 * 1500 / window  # >> Reno's increment


class TestAdditionalBehaviors:
    def test_lp_double_backoff_within_inference_window(self):
        cca = LowPriority()
        # Establish the delay envelope while still in slow start (the
        # early-congestion path only applies in congestion avoidance).
        cca.on_ack(_ack(0.0, rtt=0.05))
        cca.on_ack(_ack(0.1, rtt=0.20))
        _leave_slow_start(cca)
        cca.cwnd = 80_000.0
        cca.on_ack(_ack(5.0, rtt=0.18))  # first indication: halve
        after_first = cca.cwnd
        cca.on_ack(_ack(5.05, rtt=0.18))  # second, inside the window
        assert after_first == pytest.approx(40_000.0)
        assert cca.cwnd == cca.mss  # full yield

    def test_hybla_slow_start_exponential_term(self):
        cca = Hybla()
        cca.on_ack(_ack(0.0, rtt=0.1))  # rho = 4
        window = cca.cwnd
        cca.on_ack(_ack(0.05, rtt=0.1))
        # Slow-start increment is (2^rho - 1) * mss = 15 mss per ack.
        assert cca.cwnd - window == pytest.approx((2**4 - 1) * 1500)

    def test_illinois_beta_bounded(self):
        cca = Illinois()
        for index in range(300):
            rtt = 0.05 + (0.15 if index > 150 else 0.0)
            cca.on_ack(_ack(index * 0.01, rtt=rtt))
        assert Illinois.BETA_MIN <= cca._beta() <= Illinois.BETA_MAX

    def test_htcp_reset_after_loss(self):
        cca = Htcp()
        assert cca._alpha(5.0) > 30
        cca.on_loss(_loss(5.0))
        # Loss age resets: back to the low-speed regime.
        assert cca._alpha(5.5) == 1.0

    def test_cubic_tcp_friendly_floor(self):
        """At tiny windows Cubic must not be slower than emulated Reno."""
        cca = Cubic()
        _leave_slow_start(cca)
        cca.cwnd = 6_000.0
        cca.wmax = 6_000.0
        cca.on_loss(_loss(0.0))
        floor = cca._tcp_cwnd
        for index in range(200):
            cca.on_ack(_ack(0.01 * index))
        assert cca.cwnd >= cca._tcp_cwnd >= floor

    def test_westwood_floor_at_two_mss(self):
        cca = Westwood()
        cca.cwnd = 30_000.0
        cca.on_loss(_loss(0.1))  # no bandwidth estimate yet
        assert cca.cwnd == 2 * cca.mss

    def test_bbr_startup_exits(self):
        cca = Bbr()
        for index in range(400):
            cca.on_ack(_ack(index * 0.01, acked=6250, rtt=0.05))
        assert not cca._in_startup

    def test_vegas_slow_start_half_rate(self):
        cca = Vegas()
        window = cca.cwnd
        cca.on_ack(_ack(0.0, acked=1500, rtt=0.05))
        assert cca.cwnd - window == pytest.approx(750.0)

    def test_yeah_decongestion_sheds_queue(self):
        cca = Yeah()
        _leave_slow_start(cca)
        cca.on_ack(_ack(0.0, rtt=0.05))  # min_rtt
        cca.cwnd = 400_000.0
        before = cca.cwnd
        # Massive queueing: decongestion should shed window.
        cca.on_ack(_ack(0.1, rtt=0.40))
        assert cca.cwnd < before
