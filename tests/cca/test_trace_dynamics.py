"""Trace-level dynamics: each CCA family's signature visible in traces.

These are the behaviors the classifiers and the synthesizer key on —
the sawtooth, the cubic plateau, BBR's pulses, delay-based flatness —
verified on actual simulator output rather than hand-fed events.
"""

import numpy as np
import pytest

from repro.trace.segmentation import segment_trace
from repro.trace.signals import extract_signals


def _longest_segment_table(trace):
    segments = segment_trace(trace)
    assert segments, f"{trace.cca_name} produced no segments"
    longest = max(segments, key=len)
    return extract_signals(longest)


class TestRenoDynamics:
    def test_linear_growth_within_segment(self, reno_trace):
        """Within a loss epoch Reno's window is near-linear in time:
        a straight-line fit explains almost all variance."""
        table = _longest_segment_table(reno_trace)
        times = table.times()
        cwnd = table.observed_cwnd()
        if len(cwnd) < 30:
            pytest.skip("segment too short for a fit")
        slope, intercept = np.polyfit(times, cwnd, 1)
        fitted = slope * times + intercept
        residual = np.sqrt(np.mean((cwnd - fitted) ** 2))
        assert residual < 0.05 * cwnd.mean()
        assert slope > 0

    def test_sawtooth_range(self, reno_trace):
        """Post-slow-start, the window mostly oscillates within a ~2x
        band (percentiles, so a brief multi-loss dip doesn't dominate)."""
        cwnd = np.array(
            [a.cwnd_bytes for a in reno_trace.acks[len(reno_trace.acks) // 2 :]]
        )
        low, high = np.percentile(cwnd, [10, 90])
        assert high / max(low, 1) < 4.5


class TestCubicDynamics:
    def test_concave_segment_shape(self, cubic_trace):
        """Early in a loss epoch Cubic grows faster than late (concave
        approach to wmax): first-third growth exceeds middle-third."""
        table = _longest_segment_table(cubic_trace)
        cwnd = table.observed_cwnd()
        if len(cwnd) < 60:
            pytest.skip("segment too short")
        third = len(cwnd) // 3
        early = cwnd[third] - cwnd[0]
        middle = cwnd[2 * third] - cwnd[third]
        assert early > middle


class TestBbrDynamics:
    def test_rate_anchored_window(self, bbr_trace, small_env):
        """BBR's window hovers around cwnd_gain x BDP, not the buffer
        ceiling that loss-based CCAs ride."""
        rows = [a.cwnd_bytes for a in bbr_trace.acks if not a.dupack]
        tail = np.array(rows[len(rows) // 2 :])
        bdp = small_env.bdp_bytes
        assert np.median(tail) < 6 * bdp

    def test_pulsing_visible(self, bbr_trace):
        """PROBE_BW's gain cycle leaves periodic window oscillation."""
        rows = np.array(
            [a.cwnd_bytes for a in bbr_trace.acks if not a.dupack]
        )
        tail = rows[len(rows) // 2 :]
        if len(tail) < 100:
            pytest.skip("trace too short")
        # Oscillation: repeated local ups and downs, not monotone drift.
        diffs = np.diff(tail)
        sign_changes = np.sum(np.diff(np.sign(diffs[diffs != 0])) != 0)
        assert sign_changes > 10


class TestVegasDynamics:
    def test_flat_steady_state(self, vegas_trace):
        """Vegas converges to a nearly constant window (its defining
        contrast with loss-based sawtooths)."""
        rows = np.array(
            [a.cwnd_bytes for a in vegas_trace.acks if not a.dupack]
        )
        tail = rows[len(rows) // 2 :]
        assert tail.std() / tail.mean() < 0.05

    def test_rtt_stays_near_floor(self, vegas_trace, small_env):
        """Delay-based control keeps the queue — and thus the RTT —
        close to the propagation floor."""
        samples = np.array(
            [
                a.rtt_sample
                for a in vegas_trace.acks
                if a.rtt_sample is not None
            ]
        )
        tail = samples[len(samples) // 2 :]
        assert np.median(tail) < 1.35 * small_env.base_rtt_sec
