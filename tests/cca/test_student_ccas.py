"""Behavioral tests for the synthetic student CCAs (paper §5.6)."""

import pytest

from repro.cca import (
    Student1,
    Student2,
    Student3,
    Student4,
    Student5,
    Student6,
    Student7,
    STUDENT_CCAS,
)
from repro.cca.base import AckEvent, LossEvent


def _ack(now, acked=1500, rtt=0.05, inflight=15000):
    return AckEvent(now=now, acked_bytes=acked, rtt_sample=rtt, inflight_bytes=inflight)


def test_registry_has_seven():
    assert len(STUDENT_CCAS) == 7
    assert len({cls.name for cls in STUDENT_CCAS}) == 7


def test_students_mostly_ignore_dupack_losses():
    for cls in STUDENT_CCAS:
        cca = cls()
        cca.cwnd = 30_000.0
        before = cca.cwnd
        cca.on_loss(LossEvent(now=1.0, kind="dupack", inflight_bytes=1000))
        assert cca.cwnd == before, cls.name


def test_student1_triangle_ramp_and_reset():
    cca = Student1()
    # Flat RTT: no queue -> ramp.
    for index in range(20):
        cca.on_ack(_ack(index * 0.01, rtt=0.05))
    ramped = cca.cwnd
    assert ramped > 15_000
    # Sustained queueing: hard reset to 8 MSS.
    for index in range(60):
        cca.on_ack(_ack(1.0 + index * 0.01, rtt=0.30))
    assert cca.cwnd == 8 * 1500


def test_student2_collapse_to_one_mss():
    cca = Student2()
    for index in range(10):
        cca.on_ack(_ack(index * 0.01, rtt=0.05))
    assert cca.cwnd > 15_000
    for index in range(60):
        cca.on_ack(_ack(1.0 + index * 0.01, rtt=0.40))
    assert cca.cwnd == 1500.0


def test_student3_tracks_rate():
    cca = Student3()
    for index in range(100):
        cca.on_ack(_ack(index * 0.01, acked=3000, rtt=0.05))
    # 3000 B / 10 ms = 300 kB/s; window ~ 0.8 * rate * min_rtt.
    assert cca.cwnd == pytest.approx(0.8 * 300_000 * 0.05, rel=0.2)


def test_student4_stop_and_wait():
    cca = Student4()
    for index in range(10):
        cca.on_ack(_ack(index * 0.01))
    assert cca.cwnd == 1500.0


def test_student5_two_segments():
    cca = Student5()
    for index in range(10):
        cca.on_ack(_ack(index * 0.01))
    assert cca.cwnd == 3000.0


def test_student6_contracts_on_rising_rtt():
    grow, shrink = Student6(), Student6()
    for index in range(50):
        grow.on_ack(_ack(index * 0.05, rtt=0.05))
        shrink.on_ack(_ack(index * 0.05, rtt=0.05 + index * 0.01))
    assert grow.cwnd > shrink.cwnd


def test_student7_increase_tempered_by_delay():
    flat, queued = Student7(), Student7()
    for cca, rtt in ((flat, 0.05), (queued, 0.25)):
        cca.on_ack(_ack(0.0, rtt=0.05))  # set min_rtt
        cca.cwnd = 30_000.0
        window = cca.cwnd
        cca.on_ack(_ack(0.1, rtt=rtt))
        cca.gain = cca.cwnd - window
    assert flat.gain > queued.gain
