"""CongestionControl base-class tests: shared statistics and helpers."""

import pytest

from repro.cca.base import AckEvent, CongestionControl, LossEvent


class _Null(CongestionControl):
    name = "null"

    def _on_ack(self, ack):
        pass

    def _on_loss(self, loss):
        pass


def _ack(now, acked=1500, rtt=0.05, inflight=15000):
    return AckEvent(now=now, acked_bytes=acked, rtt_sample=rtt, inflight_bytes=inflight)


def test_initial_state():
    cca = _Null(mss=1500, initial_cwnd_segments=10)
    assert cca.cwnd == 15_000
    assert cca.ssthresh == float("inf")
    assert cca.in_slow_start


def test_rtt_statistics_track_min_max():
    cca = _Null()
    cca.on_ack(_ack(0.0, rtt=0.05))
    cca.on_ack(_ack(0.1, rtt=0.08))
    cca.on_ack(_ack(0.2, rtt=0.04))
    assert cca.min_rtt == 0.04
    assert cca.max_rtt == 0.08
    assert cca.latest_rtt == 0.04
    assert 0.04 <= cca.srtt <= 0.08


def test_srtt_is_ewma():
    cca = _Null()
    cca.on_ack(_ack(0.0, rtt=0.1))
    assert cca.srtt == 0.1
    cca.on_ack(_ack(0.1, rtt=0.2))
    assert cca.srtt == pytest.approx(0.1 + 0.125 * 0.1)


def test_none_rtt_sample_ignored():
    cca = _Null()
    cca.on_ack(_ack(0.0, rtt=None))
    assert cca.latest_rtt is None
    assert cca.min_rtt == float("inf")


def test_ack_rate_sliding_window():
    cca = _Null()
    for step in range(20):
        cca.on_ack(_ack(step * 0.01, acked=1500, rtt=0.05))
    # 1500 bytes every 10 ms -> 150 kB/s.
    assert cca.ack_rate == pytest.approx(150_000, rel=0.1)


def test_ack_rate_robust_to_burst():
    cca = _Null()
    for step in range(20):
        cca.on_ack(_ack(step * 0.01, acked=1500, rtt=0.05))
    # One SACK-style cumulative jump must not blow up the estimate.
    cca.on_ack(_ack(0.2001, acked=30_000, rtt=0.05))
    assert cca.ack_rate < 600_000


def test_loss_bookkeeping():
    cca = _Null()
    cca.on_loss(LossEvent(now=3.0, kind="dupack", inflight_bytes=10000))
    assert cca.last_loss_time == 3.0
    assert cca.losses_seen == 1


def test_multiplicative_decrease_floor():
    cca = _Null()
    cca.cwnd = 2000.0
    cca.multiplicative_decrease(0.5)
    assert cca.cwnd == 2 * cca.mss  # floored at 2 MSS


def test_timeout_reset():
    cca = _Null()
    cca.cwnd = 60_000.0
    cca.timeout_reset()
    assert cca.cwnd == cca.mss
    assert cca.ssthresh == 30_000.0


def test_cwnd_clamped_to_mss():
    cca = _Null()
    cca.cwnd = 10.0
    cca.on_ack(_ack(0.0))
    assert cca.cwnd >= cca.mss


def test_reno_ca_ack_increment():
    cca = _Null()
    cca.ssthresh = 0.0  # force congestion avoidance
    cca.cwnd = 15_000.0
    cca.reno_ca_ack(_ack(0.0, acked=1500))
    assert cca.cwnd == pytest.approx(15_000 + 1500 * 1500 / 15_000)


def test_slow_start_ack_caps_at_mss_per_ack():
    cca = _Null()
    cca.cwnd = 15_000.0
    cca.slow_start_ack(_ack(0.0, acked=4500))
    assert cca.cwnd == 16_500.0
