"""Unit-algebra tests, including hypothesis group-law properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import UnitError
from repro.units import (
    BYTES,
    BYTES_PER_SECOND,
    DIMENSIONLESS,
    SECONDS,
    Unit,
    add_units,
    compare_units,
)


def test_multiplication():
    assert BYTES_PER_SECOND * SECONDS == BYTES


def test_division():
    assert BYTES / SECONDS == BYTES_PER_SECOND
    assert BYTES / BYTES == DIMENSIONLESS


def test_power():
    assert SECONDS**3 == Unit(seconds=3)
    assert (BYTES_PER_SECOND**2) == Unit(bytes=2, seconds=-2)


def test_exact_root():
    assert Unit(seconds=3).root(3) == SECONDS
    assert Unit(bytes=3, seconds=-3).root(3) == BYTES_PER_SECOND


def test_inexact_root_raises():
    with pytest.raises(UnitError):
        BYTES.root(3)
    with pytest.raises(UnitError):
        Unit(bytes=2).root(3)


def test_dimensionless_flag():
    assert DIMENSIONLESS.is_dimensionless
    assert not BYTES.is_dimensionless


def test_add_units_agreement():
    assert add_units(BYTES, BYTES) == BYTES
    with pytest.raises(UnitError):
        add_units(BYTES, SECONDS)


def test_compare_units():
    compare_units(SECONDS, SECONDS)
    with pytest.raises(UnitError):
        compare_units(BYTES, SECONDS, context=">")


def test_str_forms():
    assert str(DIMENSIONLESS) == "1"
    assert str(BYTES) == "B"
    assert str(BYTES_PER_SECOND) == "B*s^-1"


_units = st.builds(
    Unit,
    bytes=st.integers(min_value=-4, max_value=4),
    seconds=st.integers(min_value=-4, max_value=4),
)


@given(_units, _units)
def test_mul_commutative(a, b):
    assert a * b == b * a


@given(_units, _units, _units)
def test_mul_associative(a, b, c):
    assert (a * b) * c == a * (b * c)


@given(_units)
def test_identity(a):
    assert a * DIMENSIONLESS == a
    assert a / DIMENSIONLESS == a


@given(_units)
def test_self_division(a):
    assert a / a == DIMENSIONLESS


@given(_units)
def test_cube_then_root(a):
    assert (a**3).root(3) == a
