"""Exception-taxonomy tests: every library error is a ReproError."""

import pytest

from repro import errors


ALL_ERRORS = (
    errors.UnitError,
    errors.TypeCheckError,
    errors.DslError,
    errors.ParseError,
    errors.EvaluationError,
    errors.EnumerationError,
    errors.SimulationError,
    errors.TraceError,
    errors.SynthesisError,
    errors.ClassificationError,
)


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_subclass_of_repro_error(exc):
    assert issubclass(exc, errors.ReproError)
    assert issubclass(exc, Exception)


def test_catchable_as_base():
    with pytest.raises(errors.ReproError):
        raise errors.ParseError("boom")


def test_version_exposed():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(part.isdigit() for part in parts)
