"""Handler-analysis tests (§5.3's aggressiveness / structure claims)."""

import numpy as np
import pytest

from repro.analysis import (
    REFERENCE_ENV,
    aggressiveness_ranking,
    growth_per_rtt,
    handlers_equivalent,
    response_curve,
    signal_sensitivity,
)
from repro.dsl.parser import parse
from repro.handlers import SYNTHESIZED_TEXT


def test_reno_growth_is_one_mss_per_rtt():
    assert growth_per_rtt(parse("cwnd + reno_inc")) == pytest.approx(
        1.0, rel=0.05
    )


def test_scaled_growth():
    assert growth_per_rtt(parse("cwnd + 0.37 * reno_inc")) == pytest.approx(
        0.37, rel=0.05
    )


def test_constant_handler_growth():
    # `2*mss` from a 62.5 kB window is a huge *decrease*.
    assert growth_per_rtt(parse("2 * mss")) < -30


def test_aggressiveness_ranking_matches_coefficients():
    """§5.3: the synthesized Reno-family handlers expose each CCA's
    relative aggressiveness via their reno_inc coefficients."""
    handlers = {
        name: parse(SYNTHESIZED_TEXT[name])
        for name in ("reno", "westwood", "scalable", "lp")
    }
    ranking = aggressiveness_ranking(handlers)
    order = [name for name, _ in ranking]
    # westwood (1.0) > reno (0.7) ~ lp (0.68) > scalable (0.37)
    assert order[0] == "westwood"
    assert order[-1] == "scalable"
    values = dict(ranking)
    assert values["reno"] == pytest.approx(0.7, rel=0.05)
    assert values["lp"] == pytest.approx(0.68, rel=0.05)


def test_response_curve_sweeps_signal():
    handler = parse("(vegas_diff < 1) ? cwnd + mss : cwnd")
    # Sweep RTT: below ~min_rtt + 1 queued packet the branch adds an MSS.
    rtts = np.linspace(0.05, 0.2, 10)
    curve = response_curve(handler, "rtt", rtts)
    assert curve[0] == REFERENCE_ENV["cwnd"] + REFERENCE_ENV["mss"]
    assert curve[-1] == REFERENCE_ENV["cwnd"]
    assert len(curve) == 10


def test_signal_sensitivity_detects_live_signals():
    sensitivity = signal_sensitivity(parse("cwnd + 8 * rtt * reno_inc"))
    assert sensitivity["rtt"] > 0
    assert sensitivity["cwnd"] > 0


def test_signal_sensitivity_detects_inert_signals():
    # time_since_loss appears only in an untaken branch at the reference
    # state (rtts_since_loss % 8 != 0 there is irrelevant: pick explicit).
    handler = parse("(rtt > max_rtt) ? time_since_loss * ack_rate : cwnd + mss")
    sensitivity = signal_sensitivity(handler)
    assert sensitivity["time_since_loss"] == 0.0


def test_equivalence_of_identical_structures():
    first = parse("cwnd + 0.7 * reno_inc")
    second = parse("cwnd + 0.35 * (2 * reno_inc)")
    assert handlers_equivalent(first, second)


def test_non_equivalence_of_different_gains():
    assert not handlers_equivalent(
        parse("cwnd + 0.7 * reno_inc"), parse("cwnd + 1.4 * reno_inc")
    )


def test_vegas_nv_identical_outputs():
    """§5.4: Abagnale's output for NV is identical to its output for
    Vegas — verify the published expressions really are one algorithm."""
    assert handlers_equivalent(
        parse(SYNTHESIZED_TEXT["vegas"]), parse(SYNTHESIZED_TEXT["nv"])
    )


def test_vegas_vs_veno_differ():
    assert not handlers_equivalent(
        parse(SYNTHESIZED_TEXT["vegas"]), parse(SYNTHESIZED_TEXT["veno"])
    )


def test_response_curve_custom_base_env():
    handler = parse("cwnd + mss")
    curve = response_curve(
        handler,
        "cwnd",
        [10_000.0, 20_000.0],
        base_env=dict(REFERENCE_ENV, mss=1000.0),
    )
    assert list(curve) == [11_000.0, 21_000.0]


def test_growth_env_override_changes_result():
    handler = parse("cwnd + reno_inc")
    small = growth_per_rtt(
        handler, env=dict(REFERENCE_ENV, cwnd=15_000.0, inflight=15_000.0)
    )
    # One MSS per RTT regardless of window size: Reno's invariant.
    assert small == pytest.approx(1.0, rel=0.1)


def test_equivalence_growth_tolerance_knob():
    first = parse("cwnd + 0.7 * reno_inc")
    second = parse("cwnd + 1.0 * reno_inc")
    assert not handlers_equivalent(first, second)
    assert handlers_equivalent(first, second, growth_tolerance_mss=0.5)


def test_ranking_is_sorted_descending():
    handlers = {
        "slow": parse("cwnd + 0.2 * reno_inc"),
        "fast": parse("cwnd + 2 * reno_inc"),
        "mid": parse("cwnd + reno_inc"),
    }
    ranking = aggressiveness_ranking(handlers)
    values = [value for _, value in ranking]
    assert values == sorted(values, reverse=True)
    assert [name for name, _ in ranking] == ["fast", "mid", "slow"]


def test_sensitivity_of_pulsing_handler():
    """The BBR fine-tuned handler is rate- and rtt-driven."""
    from repro.handlers import FINETUNED_TEXT

    sensitivity = signal_sensitivity(parse(FINETUNED_TEXT["bbr"]))
    assert sensitivity["ack_rate"] > 0.1
    assert sensitivity["min_rtt"] > 0.1
