#!/usr/bin/env python3
"""Quickstart: reverse-engineer TCP Reno from its packet traces.

Collects traces of the kernel Reno implementation over a small testbed
matrix, lets the classifier pick a sub-DSL, and runs Abagnale's
refinement loop.  Budgets are laptop-scale (a couple of minutes); the
recovered expression should be a Reno-variant such as
``cwnd + 0.7 * reno_inc``.

Run:  python examples/quickstart.py
"""

from repro import SynthesisConfig, reverse_engineer_cca
from repro.netsim import Environment
from repro.trace import CollectionConfig


def main() -> None:
    collection = CollectionConfig(
        duration=15.0,
        environments=(
            Environment(bandwidth_mbps=5, rtt_ms=25),
            Environment(bandwidth_mbps=10, rtt_ms=50),
            Environment(bandwidth_mbps=15, rtt_ms=80),
        ),
    )
    config = SynthesisConfig(
        initial_samples=8,
        initial_keep=4,
        completion_cap=16,
        max_iterations=3,
        exhaustive_cap=300,
        time_budget_seconds=180,
    )
    print("Collecting traces and synthesizing (about a minute)...")
    report = reverse_engineer_cca(
        "reno",
        collection=collection,
        config=config,
        max_depth=3,
        max_nodes=5,
    )
    print()
    print(report.summary())
    print()
    print("Search telemetry:")
    for record in report.result.iterations:
        kept = len(record.kept)
        print(
            f"  iteration {record.index}: {record.bucket_count} buckets "
            f"-> kept {kept}, N={record.samples_per_bucket}, "
            f"working set {record.segment_count} segments"
        )


if __name__ == "__main__":
    main()
