#!/usr/bin/env python3
"""Extension: synthesizing cwnd-on-*loss* handlers.

The paper synthesizes the cwnd-on-ACK handler and notes the technique
"generalizes to other events" (§3).  This example runs that
generalization: for several loss-based CCAs it recovers the window's
loss reaction — Reno's halving, Scalable's gentle 7/8 cut, Cubic's 0.7
beta — directly from traces.

Run:  python examples/loss_handlers.py
"""

from repro.cca import make_cca
from repro.dsl import RENO_DSL, with_budget
from repro.dsl.evaluate import evaluate
from repro.netsim import Environment, simulate
from repro.reporting import format_table
from repro.synth import synthesize_loss_handler

PROBE_STATE = {
    "cwnd": 100_000.0,
    "mss": 1500.0,
    "acked_bytes": 1500.0,
    "time_since_loss": 1.0,
}


def main() -> None:
    environments = (
        Environment(bandwidth_mbps=5, rtt_ms=25),
        Environment(bandwidth_mbps=10, rtt_ms=50),
        Environment(bandwidth_mbps=15, rtt_ms=80),
    )
    dsl = with_budget(RENO_DSL, max_depth=2, max_nodes=3)
    rows = []
    for name, documented_beta in (
        ("reno", 0.5),
        ("scalable", 0.875),
        ("cubic", 0.7),
        ("bic", 0.8),
    ):
        print(f"collecting {name} traces...")
        traces = [
            simulate(make_cca(name), env, duration=20.0)
            for env in environments
        ]
        result = synthesize_loss_handler(traces, dsl)
        implied = evaluate(result.handler, PROBE_STATE) / PROBE_STATE["cwnd"]
        rows.append(
            [
                name,
                result.expression,
                f"{implied:.2f}",
                f"{documented_beta:.2f}",
                f"{result.error:.3f}",
            ]
        )
    print()
    print(
        format_table(
            ["CCA", "synthesized loss handler", "implied beta", "documented beta", "median err"],
            rows,
            title="cwnd-on-loss handlers recovered from traces",
        )
    )


if __name__ == "__main__":
    main()
