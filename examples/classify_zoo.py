#!/usr/bin/env python3
"""Classify the CCA zoo the way the paper's Table 3 does.

Runs the Gordon-style classifier on noisy probes of a few kernel CCAs
and the CCAnalyzer-style classifier on the (UDP) student CCAs, printing
a Table-3-style report.  Classifier outputs are what Abagnale uses to
pick a sub-DSL.

Run:  python examples/classify_zoo.py
"""

from repro.classify import CcaAnalyzer, GordonClassifier, probe_config
from repro.dsl import dsl_for_classifier_label
from repro.reporting import format_table
from repro.trace import CollectionConfig, NoiseModel, collect_traces


def noisy_probes(cca_name):
    base = probe_config()
    config = CollectionConfig(
        duration=base.duration,
        environments=base.environments,
        noise=NoiseModel(
            jitter_std=0.002, dropout=0.03, cwnd_error=0.03, seed=17
        ),
        max_acks_per_trace=base.max_acks_per_trace,
    )
    return collect_traces(cca_name, config)


def main() -> None:
    gordon = GordonClassifier()
    analyzer = CcaAnalyzer()
    rows = []

    kernel = ("reno", "cubic", "bbr", "vegas", "westwood", "scalable", "nv")
    print(f"Classifying {len(kernel)} kernel CCAs with Gordon...")
    for name in kernel:
        verdict = gordon.classify(noisy_probes(name))
        hint = verdict.label if not verdict.is_unknown else verdict.closest
        rows.append(
            [name, "Gordon", verdict.render(), dsl_for_classifier_label(hint).name]
        )

    students = ("student1", "student3", "student5")
    print(f"Classifying {len(students)} student CCAs with CCAnalyzer...")
    for name in students:
        verdict = analyzer.classify(noisy_probes(name))
        hint = verdict.label if not verdict.is_unknown else verdict.closest
        rows.append(
            [
                name,
                "CCAnalyzer",
                verdict.render(),
                dsl_for_classifier_label(hint).name,
            ]
        )

    print()
    print(
        format_table(
            ["ground truth", "classifier", "output", "chosen sub-DSL"],
            rows,
            title="Classifier outputs (Table 3 style)",
        )
    )


if __name__ == "__main__":
    main()
