#!/usr/bin/env python3
"""Trace collection, visualization and archiving.

Simulates a handful of CCAs over one bottleneck, prints their visible
congestion windows as sparklines (the dynamics the synthesizer learns
from: Reno's sawtooth, Cubic's plateau, BBR's pulses, Vegas's flat
line), and archives the traces to JSON and CSV.

Run:  python examples/trace_collection.py
"""

from pathlib import Path

from repro.cca import make_cca
from repro.netsim import Environment, simulate
from repro.reporting import format_series
from repro.trace import export_csv, save_traces, segment_trace


def main() -> None:
    env = Environment(bandwidth_mbps=10, rtt_ms=50)
    print(
        f"Bottleneck: {env.bandwidth_mbps:g} Mbps, {env.rtt_ms:g} ms RTT, "
        f"{env.queue_capacity_bytes} B buffer (BDP {env.bdp_bytes} B)\n"
    )
    traces = []
    for name in ("reno", "cubic", "bbr", "vegas", "westwood", "student2"):
        trace = simulate(make_cca(name), env, duration=20.0)
        traces.append(trace)
        cwnd = [ack.cwnd_bytes for ack in trace.acks if not ack.dupack]
        segments = segment_trace(trace)
        print(format_series(f"{name} cwnd (B)", cwnd))
        print(
            f"{'':24s} {len(trace.acks)} acks, {len(trace.losses)} losses, "
            f"{len(segments)} segments"
        )

    out_dir = Path("trace_archive")
    out_dir.mkdir(exist_ok=True)
    save_traces(traces, out_dir / "zoo.json")
    export_csv(traces[0], out_dir / f"{traces[0].cca_name}.csv")
    print(f"\nArchived {len(traces)} traces under {out_dir}/")


if __name__ == "__main__":
    main()
