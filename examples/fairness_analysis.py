#!/usr/bin/env python3
"""Why reverse-engineering matters: analyzing a recovered CCA's impact.

The paper's motivation (§2.1): once an unknown CCA's behavior is
captured, its effect on *fairness* and *utilization* can be analyzed.
This example closes that loop inside the reproduction:

1. race pairs of CCAs over one bottleneck with the multi-flow simulator;
2. report goodput shares and Jain's fairness index;
3. reproduce the classic results the paper cites: AIMD pairs converge to
   fair shares (Chiu & Jain) while BBRv1 starves loss-based flows at
   shallow buffers (Ware et al.).

Run:  python examples/fairness_analysis.py
"""

from repro.cca import make_cca
from repro.netsim import Environment, fairness_report, simulate_competition
from repro.reporting import format_table


def race(first: str, second: str, env: Environment) -> dict[str, float]:
    traces = simulate_competition(
        [make_cca(first), make_cca(second)], env, duration=25.0
    )
    return fairness_report(traces, window=(10.0, 25.0))


def main() -> None:
    env = Environment(bandwidth_mbps=10, rtt_ms=50, queue_bdp=1.0)
    pairs = (
        ("reno", "reno"),
        ("reno", "cubic"),
        ("bbr", "reno"),
        ("bbr", "cubic"),
        ("vegas", "reno"),
    )
    rows = []
    for first, second in pairs:
        report = race(first, second, env)
        share_first = report[f"share_0_{first}"]
        rows.append(
            [
                f"{first} vs {second}",
                f"{share_first:.0%} / {1 - share_first:.0%}",
                f"{report['jain_index']:.3f}",
                f"{report['total_rate'] * 8 / 1e6:.1f} Mbps",
            ]
        )
    print(
        format_table(
            ["pairing", "shares", "Jain index", "aggregate goodput"],
            rows,
            title=f"Competition at {env.bandwidth_mbps:g} Mbps / "
            f"{env.rtt_ms:g} ms / 1-BDP buffer",
        )
    )
    print()
    print(
        "Expected shapes: AIMD vs AIMD is fair (Jain ~1); BBRv1 grabs a\n"
        "dominant share against loss-based flows; delay-based Vegas\n"
        "yields to loss-based competition."
    )


if __name__ == "__main__":
    main()
