#!/usr/bin/env python3
"""Reverse-engineering a *proprietary* CCA you've never seen.

This is the paper's motivating scenario (§2.1): a vendor ships a bespoke
congestion controller; all you can do is collect packet traces.  Here the
"proprietary" algorithm is defined inline — a delay-thresholded AIMD that
exists in no classifier's library — and the pipeline must (1) report it
as Unknown, (2) pick a sub-DSL from the closest known CCA, and (3)
synthesize a handler capturing its behavior.

Run:  python examples/unknown_cca.py
"""

from repro import SynthesisConfig, reverse_engineer
from repro.cca.base import AckEvent, CongestionControl, LossEvent
from repro.netsim import Environment, simulate
from repro.trace import segment_trace


class AcmeCongestionControl(CongestionControl):
    """A fictional vendor CCA: AIMD that freezes when the queue builds.

    Grows by 2 segments per RTT while the estimated queue is below 4
    packets, holds otherwise, and backs off by 30% on loss.
    """

    name = "acme"

    def _queued_packets(self) -> float:
        if self.latest_rtt is None or self.min_rtt == float("inf"):
            return 0.0
        return (self.latest_rtt - self.min_rtt) * self.ack_rate / self.mss

    def _on_ack(self, ack: AckEvent) -> None:
        if self.in_slow_start:
            self.slow_start_ack(ack)
        elif self._queued_packets() < 4.0:
            self.reno_ca_ack(ack, scale=2.0)

    def _on_loss(self, loss: LossEvent) -> None:
        if loss.kind == "timeout":
            self.timeout_reset()
        else:
            self.multiplicative_decrease(0.7)


def main() -> None:
    environments = (
        Environment(bandwidth_mbps=5, rtt_ms=25),
        Environment(bandwidth_mbps=10, rtt_ms=50),
        Environment(bandwidth_mbps=15, rtt_ms=80),
    )
    print("Collecting traces of the unknown CCA...")
    traces = [
        simulate(AcmeCongestionControl(mss=env.mss), env, duration=15.0)
        for env in environments
    ]
    segments = sum(len(segment_trace(trace)) for trace in traces)
    print(f"  {len(traces)} traces, {segments} loss-delimited segments")

    print("Classifying and synthesizing...")
    report = reverse_engineer(
        traces,
        classifier="ccanalyzer",
        config=SynthesisConfig(
            initial_samples=8,
            initial_keep=4,
            completion_cap=16,
            max_iterations=3,
            exhaustive_cap=300,
            time_budget_seconds=240,
        ),
        max_depth=4,
        max_nodes=7,
    )
    print()
    print(report.summary())
    print()
    print(
        "The vendor's actual rule was: grow 2 segments/RTT while the\n"
        "estimated queue is under 4 packets, hold otherwise, cut 30% on\n"
        "loss.  Compare with the synthesized expression above."
    )


if __name__ == "__main__":
    main()
