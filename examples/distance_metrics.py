#!/usr/bin/env python3
"""Why DTW?  A miniature of the paper's distance-metric study (§4.3).

Replays the expert BBR handler — and deliberately *mis-scaled* versions
of it — against BBR traces, under each of the four distance metrics.
DTW should keep preferring the correctly-scaled handler over wrong-CCA
handlers across the widest range of constant error (Figure 3's message).

Run:  python examples/distance_metrics.py
"""

from repro.dsl import ast
from repro.handlers import finetuned_handler
from repro.netsim import Environment
from repro.reporting import format_table
from repro.synth.scoring import Scorer
from repro.trace import CollectionConfig, collect_segments


def scale_constants(expr, factor):
    """Multiply every concrete constant in *expr* by *factor*."""

    def rec(node):
        if isinstance(node, ast.Const) and not node.is_hole:
            return ast.Const(node.value * factor)
        kids = ast.children(node)
        if not kids:
            return node
        return ast.with_children(node, tuple(rec(child) for child in kids))

    return rec(expr)


def main() -> None:
    print("Collecting BBR traces...")
    segments = collect_segments(
        "bbr",
        CollectionConfig(
            duration=12.0,
            environments=(
                Environment(bandwidth_mbps=10, rtt_ms=50),
                Environment(bandwidth_mbps=5, rtt_ms=25),
            ),
        ),
        max_segments=4,
    )
    bbr = finetuned_handler("bbr")
    rival = finetuned_handler("reno")
    errors = (0.25, 0.5, 1.0, 2.0, 4.0)

    rows = []
    for metric in ("dtw", "euclidean", "manhattan", "correlation"):
        scorer = Scorer(metric_name=metric)
        rival_score = scorer.score_handler(rival, segments)
        cells = []
        for error in errors:
            score = scorer.score_handler(scale_constants(bbr, error), segments)
            cells.append("BBR ok" if score < rival_score else "WRONG")
        rows.append([metric] + cells)

    print()
    print(
        format_table(
            ["metric"] + [f"x{error:g}" for error in errors],
            rows,
            title="Does the (mis-scaled) BBR handler still beat Reno's?",
        )
    )
    print()
    print(
        "Cells marked WRONG mean the metric preferred a different CCA's\n"
        "handler once the constants were off by that factor — the paper's\n"
        "red-shaded regions in Figure 3."
    )


if __name__ == "__main__":
    main()
